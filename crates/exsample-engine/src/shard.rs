//! Shard routing and per-shard engine workers.
//!
//! A sharded engine splits the DETECT phase of every stage across shards: each
//! query's picks are routed to the shard owning the picked frame's chunk (the
//! [`ShardRouter`]), and each shard's [`ShardWorker`] runs the batched
//! detector invocations for the frames routed to it, keeping its own cost and
//! hit tallies.  PICK stays global (per-query policies span the full chunk
//! space and own their RNG streams) and FAN-OUT stays in registration/pick
//! order, which is what makes a merged sharded run bitwise-identical to the
//! unsharded run — see the crate docs for the full determinism argument.
//!
//! A worker's stage work is split into three phases so that the middle one can
//! run on a worker thread when the engine executes shards in parallel:
//!
//! 1. [`ShardWorker::probe`] (serial, worker order) — coalesce each lane's
//!    frames and answer what it can from the shared cross-stage cache;
//! 2. [`ShardWorker::detect`] (serial **or** parallel) — run the batched
//!    detector invocations for the cache misses.  This phase touches only the
//!    worker's own lanes and tallies plus the shared `&dyn Detector`s
//!    (`Send + Sync` by trait bound), so workers are data-independent and the
//!    engine may run them concurrently in any order — on the persistent
//!    per-run worker pool (`crate::runtime`, the default, where whole
//!    `ShardWorker`s travel to the pool's lanes by value and their buffers
//!    are recycled across stages) or on legacy per-stage
//!    `std::thread::scope` threads;
//! 3. [`ShardWorker::commit_cache`] (serial, worker order) — publish the new
//!    results into the shared cache.
//!
//! Because phases 1 and 3 always run serially in worker order and phase 2 is
//! pure per-worker computation, the phase split — not locking — is what makes
//! parallel execution bitwise-identical to serial execution, cache on or off.
//!
//! Lane results are held as `Arc<FrameDetections>`: a cache hit keeps the
//! cached allocation with a reference-count bump instead of deep-copying the
//! detection list, and the same handles are shared back into the cache on
//! commit.
//!
//! Workers are engine-internal execution state; their accumulated tallies are
//! published as [`crate::merge::ShardReport`]s and combined by the
//! [`crate::merge`] layer.

use crate::cache::{DetectionCache, DetectorSlot};
use crate::error::EngineError;
use exsample_detect::{Detector, FrameDetections};
use exsample_video::{Chunking, FrameId, ShardSpec, ShardedRepository};
use std::collections::HashMap;
use std::sync::Arc;

/// Routes global frame ids to the shard owning them.
///
/// Built from a [`ShardSpec`] over a [`Chunking`]: a frame's shard is the
/// shard of its chunk.  The 1-shard router ([`ShardRouter::single`]) is the
/// unsharded case and routes everything to shard 0 without a lookup.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    /// One-past-the-end frame id of each chunk (ascending).
    bounds: Vec<FrameId>,
    /// `shards[j]` = shard owning chunk `j`.
    shards: Vec<u32>,
    shard_count: usize,
}

impl ShardRouter {
    /// The unsharded router: every frame belongs to shard 0.
    pub fn single() -> Self {
        ShardRouter {
            bounds: Vec::new(),
            shards: Vec::new(),
            shard_count: 1,
        }
    }

    /// Route frames according to `spec` over `chunking`.
    ///
    /// # Errors
    /// Returns [`EngineError::ShardSpecMismatch`] if the spec's chunk count
    /// does not match the chunking.
    pub fn new(chunking: &Chunking, spec: &ShardSpec) -> Result<Self, EngineError> {
        if spec.chunk_count() != chunking.len() {
            return Err(EngineError::ShardSpecMismatch {
                spec_chunks: spec.chunk_count(),
                chunking_chunks: chunking.len(),
            });
        }
        Ok(ShardRouter {
            bounds: chunking.chunks().iter().map(|c| c.end()).collect(),
            shards: spec.shard_assignment().to_vec(),
            shard_count: spec.shard_count() as usize,
        })
    }

    /// Route frames according to a bound [`ShardedRepository`] (whose spec and
    /// chunking are consistent by construction).
    pub fn from_repository(repo: &ShardedRepository) -> Self {
        ShardRouter::new(repo.chunking(), repo.spec())
            .expect("a ShardedRepository binds a spec to its own chunking")
    }

    /// The common construction in one call: a contiguous-range
    /// [`ShardSpec`] over `chunking`, or the bounds-free
    /// [`ShardRouter::single`] router for `shards <= 1` (the "one shard means
    /// unsharded" convention every harness uses).
    pub fn contiguous(chunking: &Chunking, shards: u32) -> Self {
        if shards <= 1 {
            return ShardRouter::single();
        }
        ShardRouter::new(chunking, &ShardSpec::contiguous(chunking.len(), shards))
            .expect("the spec was built from this chunking")
    }

    /// Number of shards frames are routed across.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Whether this router validates frame ids against chunk bounds
    /// (chunking-built routers do; [`ShardRouter::single`] cannot).
    pub fn checks_bounds(&self) -> bool {
        !self.bounds.is_empty()
    }

    /// The shard owning `frame`.
    ///
    /// # Panics
    /// Panics if the router was built from a chunking and `frame` lies beyond
    /// it (a policy produced a frame id outside the repository).  The
    /// bounds-free [`ShardRouter::single`] router cannot perform this check —
    /// any chunking-built router does, even at shard count 1.
    #[inline]
    pub fn shard_of(&self, frame: FrameId) -> usize {
        if self.bounds.is_empty() {
            return 0;
        }
        let chunk = self.bounds.partition_point(|&end| end <= frame);
        assert!(
            chunk < self.shards.len(),
            "frame {frame} is beyond the sharded chunking"
        );
        self.shards[chunk] as usize
    }
}

/// Cumulative per-query tallies kept by one worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct WorkerQueryTally {
    /// Frames of this query observed on this shard.
    pub frames: u64,
    /// New ground-truth instances first observed on this shard's frames.
    pub hits: u64,
}

/// Cumulative per-detector tallies kept by one worker (indexed by the
/// engine's detector registry slot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct WorkerDetectorTally {
    pub frames: u64,
    pub calls: u64,
}

/// One detector group's routed frames and results on one shard, for one
/// stage.  Lanes are indexed by the stage's *logical* group index (the
/// engine's cross-shard detector grouping), so the same logical group can
/// have a lane on every shard; slots and their allocations are reused across
/// stages.  Results are shared handles: a cache hit is an `Arc` clone of the
/// cached entry, a fresh detection is wrapped once and later shared back into
/// the cache the same way.
#[derive(Debug, Default)]
struct Lane {
    frames: Vec<FrameId>,
    /// Frames of this lane not answered by the cache ([`ShardWorker::probe`]),
    /// in lane order — the exact batch [`ShardWorker::detect`] runs.
    misses: Vec<FrameId>,
    results: HashMap<FrameId, Arc<FrameDetections>>,
}

/// Per-shard execution state: the frames routed to this shard in the current
/// stage, plus the shard's cumulative cost and hit tallies.
///
/// All scratch is worker-owned (detection buffer, per-group detected counts),
/// so [`ShardWorker::detect`] needs no shared mutable state and the engine
/// can run workers' detect phases on scoped threads.
#[derive(Debug)]
pub(crate) struct ShardWorker {
    shard: u32,
    lanes: Vec<Lane>,
    /// Lanes in use this stage (dead slots keep their allocations).
    live_lanes: usize,
    /// Scratch for `detect_batch` output (reused across lanes and stages).
    detect_buf: Vec<FrameDetections>,
    /// Frames this worker detected for each logical group this stage; the
    /// engine folds the cross-shard sums into its logical accounting.
    pub lane_detected: Vec<u64>,
    /// Cumulative frames actually run through detectors on this shard.
    pub detector_frames: u64,
    /// Cumulative physical `detect_batch` invocations issued by this shard.
    pub detector_calls: u64,
    /// Per-query tallies, indexed by query registration index.
    pub per_query: Vec<WorkerQueryTally>,
    /// Per-detector tallies, indexed by detector registry slot.
    pub per_detector: Vec<WorkerDetectorTally>,
}

impl ShardWorker {
    pub(crate) fn new(shard: u32) -> Self {
        ShardWorker {
            shard,
            lanes: Vec::new(),
            live_lanes: 0,
            detect_buf: Vec::new(),
            lane_detected: Vec::new(),
            detector_frames: 0,
            detector_calls: 0,
            per_query: Vec::new(),
            per_detector: Vec::new(),
        }
    }

    pub(crate) fn shard(&self) -> u32 {
        self.shard
    }

    /// Prepare for a stage with `groups` logical detector groups over
    /// `queries` registered queries.
    pub(crate) fn begin_stage(&mut self, groups: usize, queries: usize) {
        while self.lanes.len() < groups {
            self.lanes.push(Lane::default());
        }
        for lane in &mut self.lanes[..groups] {
            lane.frames.clear();
            lane.misses.clear();
            lane.results.clear();
        }
        self.live_lanes = groups;
        self.lane_detected.clear();
        self.lane_detected.resize(groups, 0);
        if self.per_query.len() < queries {
            self.per_query.resize(queries, WorkerQueryTally::default());
        }
    }

    /// Route one picked frame into the lane of logical group `group`.
    #[inline]
    pub(crate) fn push_frame(&mut self, group: usize, frame: FrameId) {
        self.lanes[group].frames.push(frame);
    }

    /// Phase 1 of the worker's stage: coalesce each lane and split it into
    /// cache hits (answered in place with an `Arc` clone of the cached entry)
    /// and misses (left for [`ShardWorker::detect`]).
    ///
    /// When `coalesce` is set, each lane's frames are sorted and deduplicated
    /// first (queries on the same shard share the detector bill).  Runs
    /// serially, in worker order, in every execution mode — it is the only
    /// phase that *reads* the shared cache, so probing order (and with it the
    /// cache's hit/miss accounting) never depends on how the detect phase is
    /// scheduled.
    pub(crate) fn probe(
        &mut self,
        detector_slots: &[DetectorSlot],
        coalesce: bool,
        mut cache: Option<&mut DetectionCache>,
    ) {
        for (g, lane) in self.lanes[..self.live_lanes].iter_mut().enumerate() {
            if lane.frames.is_empty() {
                continue;
            }
            if coalesce {
                lane.frames.sort_unstable();
                lane.frames.dedup();
            }
            match cache.as_deref_mut() {
                Some(cache) => {
                    let slot = detector_slots[g];
                    lane.results.reserve(lane.frames.len());
                    for &frame in &lane.frames {
                        match cache.get(slot, frame) {
                            Some(detections) => {
                                lane.results.insert(frame, Arc::clone(detections));
                            }
                            None => lane.misses.push(frame),
                        }
                    }
                }
                None => lane.misses.extend_from_slice(&lane.frames),
            }
        }
    }

    /// Phase 2 of the worker's stage: run the batched detector invocations
    /// for every lane with cache misses.
    ///
    /// `detectors[g]` / `detector_slots[g]` give the logical group's detector
    /// and its registry slot.  Touches only this worker's own lanes, scratch
    /// and tallies plus the shared (`Send + Sync`) detectors — no cache, no
    /// engine state — so the engine may run workers' detect phases
    /// concurrently on scoped threads without changing any observable result.
    ///
    /// When the cross-stage cache is enabled and coalescing is off, two lanes
    /// of the same stage can carry the same detector (each picking query gets
    /// its own group); lanes are processed in order and a later lane reuses
    /// any frame an earlier same-slot lane already resolved this stage, so a
    /// (detector, frame) pair is detected at most once per shard per stage —
    /// the worker-local, execution-mode-independent replacement for the
    /// intra-stage sharing that interleaving cache inserts with probes used
    /// to provide.  Without a cache, uncoalesced lanes deliberately pay the
    /// full bill (that is what "uncoalesced detector work" measures), exactly
    /// as before.
    pub(crate) fn detect(
        &mut self,
        detectors: &[&dyn Detector],
        detector_slots: &[DetectorSlot],
        share_lanes: bool,
    ) {
        for g in 0..self.live_lanes {
            let (earlier, rest) = self.lanes.split_at_mut(g);
            let lane = &mut rest[0];
            if lane.misses.is_empty() {
                continue;
            }
            // Reuse results from earlier lanes sharing this lane's detector
            // slot.  The scan only arms on the cache-on, coalesce-off
            // configuration with genuinely duplicated detectors; the common
            // paths pay one slice scan per lane at most.
            let slot = detector_slots[g];
            if share_lanes && detector_slots[..g].contains(&slot) {
                let Lane {
                    misses, results, ..
                } = lane;
                misses.retain(|&frame| {
                    let reused =
                        detector_slots[..g]
                            .iter()
                            .zip(earlier.iter())
                            .find_map(|(&s, other)| {
                                if s == slot {
                                    other.results.get(&frame)
                                } else {
                                    None
                                }
                            });
                    match reused {
                        Some(detections) => {
                            results.insert(frame, Arc::clone(detections));
                            false
                        }
                        None => true,
                    }
                });
                if lane.misses.is_empty() {
                    continue;
                }
            }
            self.detect_buf.clear();
            detectors[g].detect_batch(&lane.misses, &mut self.detect_buf);
            let detected = lane.misses.len() as u64;
            self.detector_calls += 1;
            self.detector_frames += detected;
            self.lane_detected[g] += detected;
            if self.per_detector.len() <= slot as usize {
                self.per_detector
                    .resize(slot as usize + 1, WorkerDetectorTally::default());
            }
            let tally = &mut self.per_detector[slot as usize];
            tally.frames += detected;
            tally.calls += 1;
            lane.results.reserve(self.detect_buf.len());
            for (&frame, detections) in lane.misses.iter().zip(self.detect_buf.drain(..)) {
                lane.results.insert(frame, Arc::new(detections));
            }
        }
    }

    /// Phase 3 of the worker's stage: share this stage's fresh detections
    /// into the cross-stage cache (an `Arc` clone per miss, no deep copy).
    ///
    /// Runs serially, in worker order, in every execution mode — it is the
    /// only phase that *writes* the shared cache, so insertion order (and
    /// with it LRU eviction) never depends on how the detect phase is
    /// scheduled.
    pub(crate) fn commit_cache(
        &mut self,
        detector_slots: &[DetectorSlot],
        cache: &mut DetectionCache,
    ) {
        for (g, lane) in self.lanes[..self.live_lanes].iter_mut().enumerate() {
            let slot = detector_slots[g];
            for &frame in &lane.misses {
                let detections = &lane.results[&frame];
                cache.insert(slot, frame, Arc::clone(detections));
            }
        }
    }

    /// Frames this worker ran through detectors this stage (the sum of its
    /// per-group detected counts).
    pub(crate) fn stage_detected_frames(&self) -> u64 {
        self.lane_detected.iter().sum()
    }

    /// Whether any lane has unresolved frames for [`ShardWorker::detect`]
    /// this stage (false on e.g. a fully cache-warm stage, letting the
    /// engine skip thread spawns that would only run no-ops).
    pub(crate) fn has_misses(&self) -> bool {
        self.lanes[..self.live_lanes]
            .iter()
            .any(|lane| !lane.misses.is_empty())
    }

    /// The detections of `frame` for logical group `group`, if this worker
    /// detected (or cache-answered) it this stage.
    #[inline]
    pub(crate) fn result(&self, group: usize, frame: FrameId) -> Option<&FrameDetections> {
        self.lanes
            .get(group)
            .and_then(|lane| lane.results.get(&frame))
            .map(Arc::as_ref)
    }

    /// Record a direct (fast-path) detection that bypassed the lane
    /// machinery: the single-active-query, single-shard stage.
    pub(crate) fn record_direct(&mut self, slot: DetectorSlot, frames: u64, calls: u64) {
        self.detector_frames += frames;
        self.detector_calls += calls;
        if self.per_detector.len() <= slot as usize {
            self.per_detector
                .resize(slot as usize + 1, WorkerDetectorTally::default());
        }
        let tally = &mut self.per_detector[slot as usize];
        tally.frames += frames;
        tally.calls += calls;
    }

    /// Record one observed frame (and any newly found instances) for query
    /// `query` on this shard.
    #[inline]
    pub(crate) fn record_observation(&mut self, query: usize, new_hits: u64) {
        if self.per_query.len() <= query {
            self.per_query
                .resize(query + 1, WorkerQueryTally::default());
        }
        let tally = &mut self.per_query[query];
        tally.frames += 1;
        tally.hits += new_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_video::{ChunkingPolicy, ShardPartitioner, VideoRepository};

    fn chunking(frames: u64, chunks: u32) -> Chunking {
        let repo = VideoRepository::single_clip(frames);
        Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks })
    }

    #[test]
    fn single_router_maps_everything_to_shard_zero() {
        let router = ShardRouter::single();
        assert_eq!(router.shard_count(), 1);
        for frame in [0u64, 17, u64::MAX] {
            assert_eq!(router.shard_of(frame), 0);
        }
    }

    #[test]
    fn router_agrees_with_the_sharded_repository() {
        let repo = VideoRepository::single_clip(1_000);
        let chunking = Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks: 10 });
        for p in [ShardPartitioner::RoundRobin, ShardPartitioner::Contiguous] {
            let spec = ShardSpec::new(p, chunking.len(), 3);
            let router = ShardRouter::new(&chunking, &spec).unwrap();
            let sharded = ShardedRepository::new(repo.clone(), chunking.clone(), spec);
            for frame in 0..1_000 {
                assert_eq!(
                    router.shard_of(frame) as u32,
                    sharded.shard_of_frame(frame).0,
                    "{p:?} frame {frame}"
                );
            }
            let via_repo = ShardRouter::from_repository(&sharded);
            assert_eq!(via_repo.shard_of(999), router.shard_of(999));
        }
    }

    #[test]
    fn mismatched_spec_is_a_typed_error() {
        let chunking = chunking(100, 4);
        let spec = ShardSpec::contiguous(5, 2);
        let err = ShardRouter::new(&chunking, &spec).unwrap_err();
        assert!(matches!(err, EngineError::ShardSpecMismatch { .. }));
    }

    #[test]
    #[should_panic(expected = "beyond the sharded chunking")]
    fn out_of_range_frame_panics() {
        let chunking = chunking(100, 4);
        let spec = ShardSpec::contiguous(4, 2);
        let router = ShardRouter::new(&chunking, &spec).unwrap();
        let _ = router.shard_of(100);
    }

    #[test]
    #[should_panic(expected = "beyond the sharded chunking")]
    fn chunking_built_single_shard_router_still_checks_bounds() {
        let chunking = chunking(100, 4);
        let spec = ShardSpec::contiguous(4, 1);
        let router = ShardRouter::new(&chunking, &spec).unwrap();
        assert_eq!(router.shard_of(99), 0);
        let _ = router.shard_of(100);
    }
}
