//! Shard routing and per-shard engine workers.
//!
//! A sharded engine splits the DETECT phase of every stage across shards: each
//! query's picks are routed to the shard owning the picked frame's chunk (the
//! [`ShardRouter`]), and each shard's [`ShardWorker`] runs the batched
//! detector invocations for the frames routed to it, keeping its own cost and
//! hit tallies.  PICK stays global (per-query policies span the full chunk
//! space and own their RNG streams) and FAN-OUT stays in registration/pick
//! order, which is what makes a merged sharded run bitwise-identical to the
//! unsharded run — see the crate docs for the full determinism argument.
//!
//! A worker's stage work is split into three phases:
//!
//! 1. [`ShardWorker::probe`] (serial **or** parallel) — coalesce each lane's
//!    frames and answer what it can from the shared lock-striped cross-stage
//!    cache ([`StripedDetectionCache::probe`], membership reads plus
//!    commutative per-stripe tallies — never a recency or membership
//!    mutation), recording each lane's hits and misses as this worker's
//!    commit *intents*;
//! 2. [`ShardWorker::detect`] (serial **or** parallel) — run the batched
//!    detector invocations for the cache misses.  Phases 1 and 2 touch only
//!    the worker's own lanes and tallies plus shared-and-`Sync` state (the
//!    `&dyn Detector`s, the striped cache), so workers are data-independent
//!    and the engine may run them concurrently in any order — on the
//!    persistent per-run worker pool (`crate::runtime`, the default, where
//!    whole `ShardWorker`s travel to the pool's lanes by value and their
//!    buffers are recycled across stages) or on legacy per-stage
//!    `std::thread::scope` threads;
//! 3. [`arbitrate_cache`] (serial, under one [`crate::cache::CacheTxn`]) —
//!    the arbitration pass: collect every worker's recorded hits and fresh
//!    results as intents, sort each kind into canonical `(slot, frame)`
//!    order, then apply all touches followed by all inserts.  The canonical
//!    order depends only on *which* frames were probed and detected — never
//!    on how they were partitioned across shards — so cache accounting is
//!    bitwise-identical across shard counts and partitioners, not just
//!    across thread counts at a fixed layout.
//!
//! Because cache membership never changes between a stage's probes and its
//! arbitration, probe outcomes are a pure function of the membership set and
//! phase 3's fixed replay order — not locking — is what makes parallel
//! execution bitwise-identical to serial execution, cache on or off.
//!
//! Lane results are held as `Arc<FrameDetections>`: a cache hit keeps the
//! cached allocation with a reference-count bump instead of deep-copying the
//! detection list, and the same handles are shared back into the cache on
//! commit.
//!
//! Workers are engine-internal execution state; their accumulated tallies are
//! published as [`crate::merge::ShardReport`]s and combined by the
//! [`crate::merge`] layer.

use crate::cache::{CacheActivity, DetectorSlot, StripedDetectionCache};
use crate::error::EngineError;
use crate::merge::BatchStats;
use exsample_detect::{DetectError, Detector, FrameDetections};
use exsample_video::{Chunking, FrameId, ShardSpec, ShardedRepository};
use std::collections::HashMap;
use std::sync::Arc;

/// How a worker's detect phase handles detector failures — the engine's
/// [`crate::RetryPolicy`] and [`crate::FailureMode`] flattened into the
/// `Copy` form every lane carries.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DetectPolicy {
    /// Per-frame attempt budget (batch probe excluded); `1` means no retries.
    pub max_attempts: u32,
    /// Cost units charged for the `k`-th retry of a frame:
    /// `backoff_cost * 2^(k-1)` (deterministic exponential backoff).
    pub backoff_cost: u64,
    /// Whether an exhausted frame aborts the stage (fail-fast) instead of
    /// being dropped from fan-out and tallied.
    pub fail_fast: bool,
}

impl DetectPolicy {
    /// The pre-fault-tolerance behaviour: no retries, first failure is fatal.
    #[cfg(test)]
    pub(crate) fn infallible() -> Self {
        DetectPolicy {
            max_attempts: 1,
            backoff_cost: 0,
            fail_fast: true,
        }
    }

    /// Backoff cost of the `retry`-th retry (1-based) of one frame.
    #[inline]
    fn retry_cost(&self, retry: u32) -> u64 {
        self.backoff_cost
            .saturating_mul(1u64 << u64::from(retry - 1).min(62))
    }
}

/// A fatal detect failure recorded by a worker under fail-fast: the engine
/// surfaces the first one in shard order as
/// [`EngineError::DetectorFailed`].
#[derive(Debug)]
pub(crate) struct DetectFailure {
    /// Registry slot of the failing detector.
    pub slot: DetectorSlot,
    /// The frame whose attempts were exhausted.
    pub frame: FrameId,
    /// Total attempts on the frame this stage, batch probe included.
    pub attempts: u32,
    /// The final error the detector returned.
    pub error: DetectError,
}

/// Routes global frame ids to the shard owning them.
///
/// Built from a [`ShardSpec`] over a [`Chunking`]: a frame's shard is the
/// shard of its chunk.  The 1-shard router ([`ShardRouter::single`]) is the
/// unsharded case and routes everything to shard 0 without a lookup.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    /// One-past-the-end frame id of each chunk (ascending).
    bounds: Vec<FrameId>,
    /// `shards[j]` = shard owning chunk `j`.
    shards: Vec<u32>,
    shard_count: usize,
}

impl ShardRouter {
    /// The unsharded router: every frame belongs to shard 0.
    pub fn single() -> Self {
        ShardRouter {
            bounds: Vec::new(),
            shards: Vec::new(),
            shard_count: 1,
        }
    }

    /// Route frames according to `spec` over `chunking`.
    ///
    /// # Errors
    /// Returns [`EngineError::ShardSpecMismatch`] if the spec's chunk count
    /// does not match the chunking.
    pub fn new(chunking: &Chunking, spec: &ShardSpec) -> Result<Self, EngineError> {
        if spec.chunk_count() != chunking.len() {
            return Err(EngineError::ShardSpecMismatch {
                spec_chunks: spec.chunk_count(),
                chunking_chunks: chunking.len(),
            });
        }
        Ok(ShardRouter {
            bounds: chunking.chunks().iter().map(|c| c.end()).collect(),
            shards: spec.shard_assignment().to_vec(),
            shard_count: spec.shard_count() as usize,
        })
    }

    /// Route frames according to a bound [`ShardedRepository`] (whose spec and
    /// chunking are consistent by construction).
    pub fn from_repository(repo: &ShardedRepository) -> Self {
        ShardRouter::new(repo.chunking(), repo.spec())
            .expect("a ShardedRepository binds a spec to its own chunking")
    }

    /// The common construction in one call: a contiguous-range
    /// [`ShardSpec`] over `chunking`, or the bounds-free
    /// [`ShardRouter::single`] router for `shards <= 1` (the "one shard means
    /// unsharded" convention every harness uses).
    pub fn contiguous(chunking: &Chunking, shards: u32) -> Self {
        if shards <= 1 {
            return ShardRouter::single();
        }
        ShardRouter::new(chunking, &ShardSpec::contiguous(chunking.len(), shards))
            .expect("the spec was built from this chunking")
    }

    /// Number of shards frames are routed across.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Whether this router validates frame ids against chunk bounds
    /// (chunking-built routers do; [`ShardRouter::single`] cannot).
    pub fn checks_bounds(&self) -> bool {
        !self.bounds.is_empty()
    }

    /// The shard owning `frame`.
    ///
    /// # Panics
    /// Panics if the router was built from a chunking and `frame` lies beyond
    /// it (a policy produced a frame id outside the repository).  The
    /// bounds-free [`ShardRouter::single`] router cannot perform this check —
    /// any chunking-built router does, even at shard count 1.
    #[inline]
    pub fn shard_of(&self, frame: FrameId) -> usize {
        if self.bounds.is_empty() {
            return 0;
        }
        let chunk = self.bounds.partition_point(|&end| end <= frame);
        assert!(
            chunk < self.shards.len(),
            "frame {frame} is beyond the sharded chunking"
        );
        self.shards[chunk] as usize
    }
}

/// Cumulative per-query tallies kept by one worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct WorkerQueryTally {
    /// Frames of this query observed on this shard.
    pub frames: u64,
    /// New ground-truth instances first observed on this shard's frames.
    pub hits: u64,
    /// Picks of this query dropped from fan-out because their detection
    /// failed (degraded failure modes only).
    pub dropped: u64,
}

/// Cumulative per-detector tallies kept by one worker (indexed by the
/// engine's detector registry slot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct WorkerDetectorTally {
    pub frames: u64,
    pub calls: u64,
    /// Frames whose detect attempts were exhausted without success.
    pub failures: u64,
}

/// One detector group's routed frames and results on one shard, for one
/// stage.  Lanes are indexed by the stage's *logical* group index (the
/// engine's cross-shard detector grouping), so the same logical group can
/// have a lane on every shard; slots and their allocations are reused across
/// stages.  Results are shared handles: a cache hit is an `Arc` clone of the
/// cached entry, a fresh detection is wrapped once and later shared back into
/// the cache the same way.
#[derive(Debug, Default)]
struct Lane {
    frames: Vec<FrameId>,
    /// Frames of this lane not answered by the cache ([`ShardWorker::probe`]),
    /// in lane order — the exact batch [`ShardWorker::detect`] runs.
    misses: Vec<FrameId>,
    /// Frames of this lane answered by the cache, in probe order — the
    /// worker's recorded touch intents, replayed during commit arbitration.
    hits: Vec<FrameId>,
    results: HashMap<FrameId, Arc<FrameDetections>>,
}

/// One insert intent collected for [`arbitrate_cache`]: a fresh detection a
/// worker wants published into the cross-stage cache, tagged with the
/// owning worker's index for outcome attribution.
struct CacheInsert {
    slot: DetectorSlot,
    frame: FrameId,
    worker: usize,
    detections: Arc<FrameDetections>,
}

/// Phase 3 — serial commit arbitration over the striped cache.
///
/// Collects every worker's recorded probe hits (touch intents) and fresh
/// detections (insert intents), sorts each kind into canonical
/// `(slot, frame)` order, then applies all touches followed by all inserts
/// under one [`crate::cache::CacheTxn`].  Keys are unique across workers (a frame is
/// routed to exactly one shard, and uncoalesced same-slot lanes dedupe at
/// probe time), so the canonical order — and with it every recency update,
/// eviction and admission decision — depends only on the set of frames
/// probed and detected this stage, never on the shard layout or on which
/// thread ran which lane.  That is what makes cache accounting
/// bitwise-identical across shard counts and partitioners, not merely
/// across thread counts at a fixed layout.
pub(crate) fn arbitrate_cache(
    workers: &mut [ShardWorker],
    detector_slots: &[DetectorSlot],
    cache: &StripedDetectionCache,
) {
    let mut txn = cache.begin();
    let mut touches: Vec<(DetectorSlot, FrameId)> = Vec::new();
    for worker in workers.iter() {
        worker.collect_cache_touches(detector_slots, &mut touches);
    }
    touches.sort_unstable();
    for (slot, frame) in touches {
        txn.touch(slot, frame);
    }
    let mut inserts: Vec<CacheInsert> = Vec::new();
    for (index, worker) in workers.iter().enumerate() {
        worker.collect_cache_inserts(detector_slots, index, &mut inserts);
    }
    inserts.sort_unstable_by_key(|intent| (intent.slot, intent.frame));
    for intent in inserts {
        let outcome = txn.insert(intent.slot, intent.frame, intent.detections);
        workers[intent.worker].absorb_commit_outcome(outcome);
    }
}

/// Per-shard execution state: the frames routed to this shard in the current
/// stage, plus the shard's cumulative cost and hit tallies.
///
/// All scratch is worker-owned (detection buffer, per-group detected counts),
/// so [`ShardWorker::detect`] needs no shared mutable state and the engine
/// can run workers' detect phases on scoped threads.
#[derive(Debug)]
pub(crate) struct ShardWorker {
    shard: u32,
    lanes: Vec<Lane>,
    /// Lanes in use this stage (dead slots keep their allocations).
    live_lanes: usize,
    /// Scratch for `detect_batch` output (reused across lanes and stages).
    detect_buf: Vec<FrameDetections>,
    /// Frames this worker detected for each logical group this stage; the
    /// engine folds the cross-shard sums into its logical accounting.
    pub lane_detected: Vec<u64>,
    /// Frames this worker *failed* for each logical group this stage (after
    /// exhausting retries); the engine folds these into its per-detector
    /// quarantine accounting.
    pub lane_failed: Vec<u64>,
    /// Cumulative frames actually run through detectors on this shard.
    pub detector_frames: u64,
    /// Cumulative physical `detect_batch` invocations issued by this shard.
    pub detector_calls: u64,
    /// Cumulative per-frame retry attempts issued on this shard.
    pub retries: u64,
    /// Cumulative backoff cost units charged on this shard.
    pub backoff: u64,
    /// Cumulative frames whose detect attempts were exhausted on this shard.
    pub failed_frames: u64,
    /// This stage's retry attempts (reset by [`ShardWorker::begin_stage`]).
    pub stage_retries: u64,
    /// This stage's backoff cost units (reset by
    /// [`ShardWorker::begin_stage`]).
    pub stage_backoff: u64,
    /// Cumulative batch-size statistics over the physical invocations
    /// attributed to this shard (`batches.count` tracks
    /// [`ShardWorker::detector_calls`] exactly; the merge layer checks it).
    pub batches: BatchStats,
    /// This stage's batch-size statistics (reset by
    /// [`ShardWorker::begin_stage`]).
    pub stage_batches: BatchStats,
    /// This stage's cache activity attributed to this shard (reset by
    /// [`ShardWorker::begin_stage`]): probe hits/misses plus the
    /// evictions/admission-rejects this shard's commits triggered.
    pub stage_cache: CacheActivity,
    /// Cumulative cache activity attributed to this shard; summing every
    /// shard's tally reproduces the engine totals exactly (the merge layer
    /// cross-checks this).
    pub cache_tally: CacheActivity,
    /// The first fatal failure recorded under fail-fast, if any; the engine
    /// checks workers in shard order after every detect pass and aborts the
    /// stage on the first one it finds.
    pub fatal: Option<DetectFailure>,
    /// Per-query tallies, indexed by query registration index.
    pub per_query: Vec<WorkerQueryTally>,
    /// Per-detector tallies, indexed by detector registry slot.
    pub per_detector: Vec<WorkerDetectorTally>,
}

impl ShardWorker {
    pub(crate) fn new(shard: u32) -> Self {
        ShardWorker {
            shard,
            lanes: Vec::new(),
            live_lanes: 0,
            detect_buf: Vec::new(),
            lane_detected: Vec::new(),
            lane_failed: Vec::new(),
            detector_frames: 0,
            detector_calls: 0,
            retries: 0,
            backoff: 0,
            failed_frames: 0,
            stage_retries: 0,
            stage_backoff: 0,
            batches: BatchStats::default(),
            stage_batches: BatchStats::default(),
            stage_cache: CacheActivity::default(),
            cache_tally: CacheActivity::default(),
            fatal: None,
            per_query: Vec::new(),
            per_detector: Vec::new(),
        }
    }

    pub(crate) fn shard(&self) -> u32 {
        self.shard
    }

    /// Prepare for a stage with `groups` logical detector groups over
    /// `queries` registered queries.
    pub(crate) fn begin_stage(&mut self, groups: usize, queries: usize) {
        while self.lanes.len() < groups {
            self.lanes.push(Lane::default());
        }
        for lane in &mut self.lanes[..groups] {
            lane.frames.clear();
            lane.misses.clear();
            lane.hits.clear();
            lane.results.clear();
        }
        self.live_lanes = groups;
        self.lane_detected.clear();
        self.lane_detected.resize(groups, 0);
        self.lane_failed.clear();
        self.lane_failed.resize(groups, 0);
        self.stage_retries = 0;
        self.stage_backoff = 0;
        self.stage_batches = BatchStats::default();
        self.stage_cache = CacheActivity::default();
        if self.per_query.len() < queries {
            self.per_query.resize(queries, WorkerQueryTally::default());
        }
    }

    /// Route one picked frame into the lane of logical group `group`.
    #[inline]
    pub(crate) fn push_frame(&mut self, group: usize, frame: FrameId) {
        self.lanes[group].frames.push(frame);
    }

    /// Phase 1 of the worker's stage: coalesce each lane and split it into
    /// cache hits (answered in place with an `Arc` clone of the cached entry,
    /// and recorded in probe order as this worker's touch intents) and misses
    /// (left for [`ShardWorker::detect`]).
    ///
    /// When `coalesce` is set, each lane's frames are sorted and deduplicated
    /// first (queries on the same shard share the detector bill).  Runs once
    /// per worker per stage — inline on the coordinator or inside the
    /// parallel dispatch (`runtime::detect_chunk`) — and only *reads* cache
    /// membership while tallying per-stripe counters, so probe outcomes are
    /// a pure function of the membership set and the hit/miss sums are
    /// identical no matter which thread carries which worker.
    ///
    /// With coalescing *off*, two same-stage lanes of this worker can carry
    /// the same detector; a later lane dedupes against earlier same-slot
    /// lanes at probe time instead of probing the cache again: a frame an
    /// earlier lane hit is shared immediately, a frame an earlier lane
    /// missed joins this lane's misses untallied (the detect phase's
    /// same-slot reuse resolves it without a second detection or commit).
    /// Each distinct `(detector, frame)` pair therefore counts exactly once
    /// per shard per stage — matching the single physical detection it can
    /// cost.
    pub(crate) fn probe(
        &mut self,
        detector_slots: &[DetectorSlot],
        coalesce: bool,
        cache: Option<&StripedDetectionCache>,
    ) {
        for g in 0..self.live_lanes {
            let (earlier, rest) = self.lanes.split_at_mut(g);
            let lane = &mut rest[0];
            if lane.frames.is_empty() {
                continue;
            }
            if coalesce {
                lane.frames.sort_unstable();
                lane.frames.dedup();
            }
            let Some(cache) = cache else {
                lane.misses.extend_from_slice(&lane.frames);
                continue;
            };
            let slot = detector_slots[g];
            let dedupe = detector_slots[..g].contains(&slot);
            lane.results.reserve(lane.frames.len());
            'frames: for i in 0..lane.frames.len() {
                let frame = lane.frames[i];
                if dedupe {
                    // An earlier same-slot lane already probed this frame:
                    // reuse its outcome without touching the cache tallies.
                    for (other, &s) in earlier.iter().zip(detector_slots) {
                        if s != slot {
                            continue;
                        }
                        if let Some(detections) = other.results.get(&frame) {
                            lane.results.insert(frame, Arc::clone(detections));
                            continue 'frames;
                        }
                        if other.misses.contains(&frame) {
                            lane.misses.push(frame);
                            continue 'frames;
                        }
                    }
                }
                match cache.probe(slot, frame) {
                    Some(detections) => {
                        lane.results.insert(frame, detections);
                        lane.hits.push(frame);
                        self.stage_cache.hits += 1;
                        self.cache_tally.hits += 1;
                    }
                    None => {
                        lane.misses.push(frame);
                        self.stage_cache.misses += 1;
                        self.cache_tally.misses += 1;
                    }
                }
            }
        }
    }

    /// Phase 2 of the worker's stage: run the batched detector invocations
    /// for every lane with cache misses.
    ///
    /// `detectors[g]` / `detector_slots[g]` give the logical group's detector
    /// and its registry slot.  Touches only this worker's own lanes, scratch
    /// and tallies plus the shared (`Send + Sync`) detectors — no cache, no
    /// engine state — so the engine may run workers' detect phases
    /// concurrently on scoped threads without changing any observable result.
    ///
    /// Detection may fail.  Each lane is first probed with one batched
    /// [`Detector::try_detect_batch`] call — the fault-free path, identical
    /// in cost and behaviour to the pre-fault-tolerance engine.  If the probe
    /// errs, the lane falls back to per-frame recovery: every miss is
    /// attempted individually up to `policy.max_attempts` times (a permanent
    /// error stops retrying immediately), retries and their deterministic
    /// backoff cost are tallied per frame, and a frame whose attempts are
    /// exhausted is *removed from the lane's misses* — it gains no result, is
    /// never committed to the cache, and (under fail-fast) is recorded in
    /// [`ShardWorker::fatal`] and aborts this worker's detect pass.  Because
    /// every frame's attempt history depends only on its own schedule (one
    /// probe plus its own per-frame tries), the per-frame tallies are
    /// independent of how frames are batched into shards — the engine's
    /// fault determinism guarantee.
    ///
    /// When the cross-stage cache is enabled and coalescing is off, two lanes
    /// of the same stage can carry the same detector (each picking query gets
    /// its own group); lanes are processed in order and a later lane reuses
    /// any frame an earlier same-slot lane already resolved this stage, so a
    /// (detector, frame) pair is detected at most once per shard per stage —
    /// the worker-local, execution-mode-independent replacement for the
    /// intra-stage sharing that interleaving cache inserts with probes used
    /// to provide.  Without a cache, uncoalesced lanes deliberately pay the
    /// full bill (that is what "uncoalesced detector work" measures), exactly
    /// as before.
    pub(crate) fn detect(
        &mut self,
        detectors: &[&dyn Detector],
        detector_slots: &[DetectorSlot],
        share_lanes: bool,
        policy: DetectPolicy,
    ) {
        for g in 0..self.live_lanes {
            if self.lanes[g].misses.is_empty() {
                continue;
            }
            let slot = detector_slots[g];
            if share_lanes {
                self.reuse_shared_lane(g, detector_slots);
            }
            let lane = &mut self.lanes[g];
            if lane.misses.is_empty() {
                continue;
            }
            self.detect_buf.clear();
            match detectors[g].try_detect_batch(&lane.misses, &mut self.detect_buf) {
                Ok(()) => {
                    // Fault-free path: identical bookkeeping to the
                    // pre-fault-tolerance engine.
                    let detected = lane.misses.len() as u64;
                    self.detector_calls += 1;
                    self.detector_frames += detected;
                    self.lane_detected[g] += detected;
                    if self.per_detector.len() <= slot as usize {
                        self.per_detector
                            .resize(slot as usize + 1, WorkerDetectorTally::default());
                    }
                    let tally = &mut self.per_detector[slot as usize];
                    tally.frames += detected;
                    tally.calls += 1;
                    self.stage_batches.record(detected);
                    self.batches.record(detected);
                    lane.results.reserve(self.detect_buf.len());
                    for (&frame, detections) in lane.misses.iter().zip(self.detect_buf.drain(..)) {
                        lane.results.insert(frame, Arc::new(detections));
                    }
                }
                Err(_) => {
                    // The batch probe failed somewhere in the lane: fall back
                    // to per-frame recovery.  Each frame's attempt history is
                    // one probe plus its own per-frame tries, so tallies are
                    // independent of lane/shard composition.
                    let max_attempts = policy.max_attempts.max(1);
                    let probe_frames = lane.misses.len() as u64;
                    let mut physical_calls = 1u64; // the failed probe
                    let mut ok_frames = 0u64;
                    let mut lane_retries = 0u64;
                    let mut lane_backoff = 0u64;
                    let mut lane_failures = 0u64;
                    let mut fatal: Option<DetectFailure> = None;
                    let mut kept = 0usize;
                    for idx in 0..lane.misses.len() {
                        let frame = lane.misses[idx];
                        let mut attempts = 0u32;
                        let mut outcome: Result<FrameDetections, DetectError>;
                        loop {
                            attempts += 1;
                            self.detect_buf.clear();
                            match detectors[g].try_detect_batch(
                                std::slice::from_ref(&frame),
                                &mut self.detect_buf,
                            ) {
                                Ok(()) => {
                                    outcome = Ok(self
                                        .detect_buf
                                        .pop()
                                        .expect("one detection set per detected frame"));
                                    break;
                                }
                                Err(err) => {
                                    let transient = err.is_transient();
                                    outcome = Err(err);
                                    if !transient || attempts >= max_attempts {
                                        break;
                                    }
                                    // The upcoming try is retry number
                                    // `attempts` (1-based) for this frame.
                                    lane_retries += 1;
                                    lane_backoff += policy.retry_cost(attempts);
                                }
                            }
                        }
                        physical_calls += u64::from(attempts);
                        match outcome {
                            Ok(detections) => {
                                lane.results.insert(frame, Arc::new(detections));
                                lane.misses[kept] = frame;
                                kept += 1;
                                ok_frames += 1;
                            }
                            Err(error) => {
                                lane_failures += 1;
                                if policy.fail_fast {
                                    fatal = Some(DetectFailure {
                                        slot,
                                        frame,
                                        // Batch probe + per-frame tries.
                                        attempts: attempts + 1,
                                        error,
                                    });
                                    break;
                                }
                            }
                        }
                    }
                    // Failed (and, under fail-fast, unprocessed) frames leave
                    // the miss list so they can never be committed to the
                    // cache or fanned out.
                    lane.misses.truncate(kept);
                    // One failed probe over the whole lane, then size-1
                    // recovery calls.
                    self.stage_batches.record(probe_frames);
                    self.batches.record(probe_frames);
                    self.stage_batches.record_repeat(1, physical_calls - 1);
                    self.batches.record_repeat(1, physical_calls - 1);
                    self.detector_calls += physical_calls;
                    self.detector_frames += ok_frames;
                    self.lane_detected[g] += ok_frames;
                    self.lane_failed[g] += lane_failures;
                    self.stage_retries += lane_retries;
                    self.retries += lane_retries;
                    self.stage_backoff += lane_backoff;
                    self.backoff += lane_backoff;
                    self.failed_frames += lane_failures;
                    if self.per_detector.len() <= slot as usize {
                        self.per_detector
                            .resize(slot as usize + 1, WorkerDetectorTally::default());
                    }
                    let tally = &mut self.per_detector[slot as usize];
                    tally.frames += ok_frames;
                    tally.calls += physical_calls;
                    tally.failures += lane_failures;
                    if fatal.is_some() {
                        self.fatal = fatal;
                        return;
                    }
                }
            }
        }
    }

    /// Reuse results an earlier same-slot lane of this worker already
    /// resolved this stage — the cache-on, coalesce-off intra-stage sharing
    /// described on [`ShardWorker::detect`].  The scan only arms with
    /// genuinely duplicated detectors; the common paths pay one slice scan
    /// per lane at most.
    fn reuse_shared_lane(&mut self, g: usize, detector_slots: &[DetectorSlot]) {
        let slot = detector_slots[g];
        if !detector_slots[..g].contains(&slot) {
            return;
        }
        let (earlier, rest) = self.lanes.split_at_mut(g);
        let Lane {
            misses, results, ..
        } = &mut rest[0];
        misses.retain(|&frame| {
            let reused = detector_slots[..g]
                .iter()
                .zip(earlier.iter())
                .find_map(|(&s, other)| {
                    if s == slot {
                        other.results.get(&frame)
                    } else {
                        None
                    }
                });
            match reused {
                Some(detections) => {
                    results.insert(frame, Arc::clone(detections));
                    false
                }
                None => true,
            }
        });
    }

    /// Per-frame recovery of one frame after a failed aggregated batch probe:
    /// the exact per-frame loop of [`ShardWorker::detect`]'s error path,
    /// charged to this worker (the frame's owner).  Because the frame's
    /// attempt history is still one batch probe plus its own per-frame tries,
    /// its tallies are identical to the per-shard path regardless of how the
    /// aggregator composed the failed batch.
    fn recover_frame(
        &mut self,
        detector: &dyn Detector,
        group: usize,
        slot: DetectorSlot,
        frame: FrameId,
        policy: DetectPolicy,
    ) {
        let max_attempts = policy.max_attempts.max(1);
        let mut attempts = 0u32;
        let mut retries = 0u64;
        let mut backoff = 0u64;
        let outcome = loop {
            attempts += 1;
            self.detect_buf.clear();
            match detector.try_detect_batch(std::slice::from_ref(&frame), &mut self.detect_buf) {
                Ok(()) => {
                    break Ok(self
                        .detect_buf
                        .pop()
                        .expect("one detection set per detected frame"));
                }
                Err(err) => {
                    let transient = err.is_transient();
                    if !transient || attempts >= max_attempts {
                        break Err(err);
                    }
                    // The upcoming try is retry number `attempts` (1-based).
                    retries += 1;
                    backoff += policy.retry_cost(attempts);
                }
            }
        };
        self.detector_calls += u64::from(attempts);
        self.record_batches(1, u64::from(attempts));
        self.stage_retries += retries;
        self.retries += retries;
        self.stage_backoff += backoff;
        self.backoff += backoff;
        match outcome {
            Ok(detections) => {
                self.detector_frames += 1;
                self.lane_detected[group] += 1;
                let tally = self.per_detector_entry(slot);
                tally.frames += 1;
                tally.calls += u64::from(attempts);
                self.lanes[group]
                    .results
                    .insert(frame, Arc::new(detections));
            }
            Err(error) => {
                self.failed_frames += 1;
                self.lane_failed[group] += 1;
                let tally = self.per_detector_entry(slot);
                tally.failures += 1;
                tally.calls += u64::from(attempts);
                if policy.fail_fast {
                    self.fatal = Some(DetectFailure {
                        slot,
                        frame,
                        // Batch probe + per-frame tries.
                        attempts: attempts + 1,
                        error,
                    });
                }
            }
        }
    }

    fn per_detector_entry(&mut self, slot: DetectorSlot) -> &mut WorkerDetectorTally {
        if self.per_detector.len() <= slot as usize {
            self.per_detector
                .resize(slot as usize + 1, WorkerDetectorTally::default());
        }
        &mut self.per_detector[slot as usize]
    }

    /// Record `count` physical invocations of `frames` frames each into this
    /// shard's batch statistics (stage and cumulative).
    pub(crate) fn record_batches(&mut self, frames: u64, count: u64) {
        self.stage_batches.record_repeat(frames, count);
        self.batches.record_repeat(frames, count);
    }

    /// Adopt a staged frame buffer as the lane of logical group `group`,
    /// handing the lane's previous (cleared) buffer back for recycling.
    ///
    /// Overlap-mode stages route picks into engine-side staging buffers while
    /// the previous stage's DETECT is still running, then load them here
    /// right after [`ShardWorker::begin_stage`]; swapping keeps both sides'
    /// allocations alive across stages.
    #[inline]
    pub(crate) fn adopt_frames(&mut self, group: usize, frames: &mut Vec<FrameId>) {
        std::mem::swap(&mut self.lanes[group].frames, frames);
    }

    /// Export this worker's recorded probe hits as touch intents for
    /// [`arbitrate_cache`], which sorts all workers' intents into canonical
    /// `(slot, frame)` order before applying any of them.
    fn collect_cache_touches(
        &self,
        detector_slots: &[DetectorSlot],
        out: &mut Vec<(DetectorSlot, FrameId)>,
    ) {
        for (g, lane) in self.lanes[..self.live_lanes].iter().enumerate() {
            let slot = detector_slots[g];
            out.extend(lane.hits.iter().map(|&frame| (slot, frame)));
        }
    }

    /// Export this stage's fresh detections as insert intents for
    /// [`arbitrate_cache`] (an `Arc` clone per miss, no deep copy), tagged
    /// with this worker's index so eviction/admission outcomes can be folded
    /// back into the right shard's tallies.
    ///
    /// Cache hygiene under faults: a frame whose detect attempts failed was
    /// removed from the lane's miss list by [`ShardWorker::detect`], so a
    /// failed attempt can never be committed — only frames with an actual
    /// result reach the LRU, and each exactly once per stage.
    fn collect_cache_inserts(
        &self,
        detector_slots: &[DetectorSlot],
        worker: usize,
        out: &mut Vec<CacheInsert>,
    ) {
        for (g, lane) in self.lanes[..self.live_lanes].iter().enumerate() {
            let slot = detector_slots[g];
            for &frame in &lane.misses {
                let Some(detections) = lane.results.get(&frame) else {
                    // A dedupe-joined miss whose detection lives on the
                    // earlier same-slot lane (which commits it); nothing to
                    // publish here.
                    continue;
                };
                out.push(CacheInsert {
                    slot,
                    frame,
                    worker,
                    detections: Arc::clone(detections),
                });
            }
        }
    }

    /// Fold one insert's eviction/admission outcome into this shard's cache
    /// tallies (called by [`arbitrate_cache`] for each of this worker's
    /// insert intents).
    fn absorb_commit_outcome(&mut self, outcome: crate::cache::CommitOutcome) {
        self.stage_cache.evictions += outcome.evicted;
        self.cache_tally.evictions += outcome.evicted;
        self.stage_cache.admission_rejects += u64::from(outcome.rejected);
        self.cache_tally.admission_rejects += u64::from(outcome.rejected);
    }

    /// Frames this worker ran through detectors this stage (the sum of its
    /// per-group detected counts).
    pub(crate) fn stage_detected_frames(&self) -> u64 {
        self.lane_detected.iter().sum()
    }

    /// Frames this worker failed this stage (the sum of its per-group failed
    /// counts).
    #[cfg(test)]
    pub(crate) fn stage_failed_frames(&self) -> u64 {
        self.lane_failed.iter().sum()
    }

    /// Whether any lane has unresolved frames for [`ShardWorker::detect`]
    /// this stage (only meaningful after [`ShardWorker::probe`] ran).
    pub(crate) fn has_misses(&self) -> bool {
        self.lanes[..self.live_lanes]
            .iter()
            .any(|lane| !lane.misses.is_empty())
    }

    /// Whether any lane has routed frames this stage (the cache-off
    /// pre-dispatch work check: no frames means dispatch would only run
    /// no-ops).
    pub(crate) fn has_frames(&self) -> bool {
        self.lanes[..self.live_lanes]
            .iter()
            .any(|lane| !lane.frames.is_empty())
    }

    /// Whether every frame routed to this worker this stage is already
    /// resident in the cache — the pre-dispatch warm check, evaluated
    /// *before* [`ShardWorker::probe`] runs.  Uses the tally-free
    /// [`StripedDetectionCache::contains`] so the decision never perturbs
    /// the hit/miss accounting the real probe will produce (which keeps
    /// cache accounting execution-invariant: the skip changes where the
    /// probe runs, never what it counts).
    pub(crate) fn is_warm(
        &self,
        detector_slots: &[DetectorSlot],
        cache: &StripedDetectionCache,
    ) -> bool {
        self.lanes[..self.live_lanes]
            .iter()
            .enumerate()
            .all(|(g, lane)| {
                let slot = detector_slots[g];
                lane.frames.iter().all(|&frame| cache.contains(slot, frame))
            })
    }

    /// The detections of `frame` for logical group `group`, if this worker
    /// detected (or cache-answered) it this stage.
    #[inline]
    pub(crate) fn result(&self, group: usize, frame: FrameId) -> Option<&FrameDetections> {
        self.lanes
            .get(group)
            .and_then(|lane| lane.results.get(&frame))
            .map(Arc::as_ref)
    }

    /// Record a direct (fast-path) detection that bypassed the lane
    /// machinery: the single-active-query, single-shard stage.
    pub(crate) fn record_direct(&mut self, slot: DetectorSlot, frames: u64, calls: u64) {
        self.detector_frames += frames;
        self.detector_calls += calls;
        if self.per_detector.len() <= slot as usize {
            self.per_detector
                .resize(slot as usize + 1, WorkerDetectorTally::default());
        }
        let tally = &mut self.per_detector[slot as usize];
        tally.frames += frames;
        tally.calls += calls;
    }

    /// Record fault telemetry for a direct (fast-path) detection that
    /// bypassed the lane machinery.
    pub(crate) fn record_direct_faults(
        &mut self,
        slot: DetectorSlot,
        retries: u64,
        backoff: u64,
        failures: u64,
    ) {
        self.stage_retries += retries;
        self.retries += retries;
        self.stage_backoff += backoff;
        self.backoff += backoff;
        self.failed_frames += failures;
        if self.per_detector.len() <= slot as usize {
            self.per_detector
                .resize(slot as usize + 1, WorkerDetectorTally::default());
        }
        self.per_detector[slot as usize].failures += failures;
    }

    /// Record one observed frame (and any newly found instances) for query
    /// `query` on this shard.
    #[inline]
    pub(crate) fn record_observation(&mut self, query: usize, new_hits: u64) {
        if self.per_query.len() <= query {
            self.per_query
                .resize(query + 1, WorkerQueryTally::default());
        }
        let tally = &mut self.per_query[query];
        tally.frames += 1;
        tally.hits += new_hits;
    }

    /// Record one pick of query `query` dropped from fan-out because its
    /// detection failed (degraded failure modes).
    #[inline]
    pub(crate) fn record_dropped(&mut self, query: usize) {
        if self.per_query.len() <= query {
            self.per_query
                .resize(query + 1, WorkerQueryTally::default());
        }
        self.per_query[query].dropped += 1;
    }
}

/// Cross-shard aggregated DETECT: the batching replacement for running each
/// worker's [`ShardWorker::detect`] independently.
///
/// For each logical detector group (in group order), the per-shard demand —
/// every worker's cache misses for that group, gathered in deterministic
/// (shard, frame-within-lane) order — is concatenated and issued as batches
/// of at most `max_batch` frames (one batch per group when unbounded), then
/// each result is scattered back into its owning worker's lane.  Logical
/// tallies (detected frames, per-group counts, retry/backoff/failure
/// telemetry) land on the frame's *owner*, so they are identical to the
/// per-shard path for any shard layout; each *physical* call (and its batch
/// statistics) is attributed to the shard owning the batch's first frame, so
/// per-shard call counts remain well-defined and `batches.count` keeps
/// tracking `detector_calls` everywhere.
///
/// Groups are processed strictly in order with all workers completing a group
/// before the next begins, which preserves the same-slot lane reuse semantics
/// of [`ShardWorker::detect`] (a later lane of a worker reuses what any of
/// its earlier lanes resolved).  Faults keep their per-shard shape: a failed
/// batch probe sends exactly that batch's frames through the owner-charged
/// per-frame recovery loop, and under fail-fast a worker whose frame exhausts
/// its attempts skips its own remaining frames (this group and later ones),
/// exactly like the per-worker early return — other shards are unaffected.
///
/// Runs on one thread (the aggregated batch *is* the cross-shard batch, so
/// there is nothing left to parallelise across workers): inline on the
/// coordinator, or as a single pool job when the engine overlaps PICK with
/// DETECT.
pub(crate) fn aggregate_detect(
    workers: &mut [ShardWorker],
    detectors: &[&dyn Detector],
    detector_slots: &[DetectorSlot],
    share_lanes: bool,
    policy: DetectPolicy,
    max_batch: usize,
) {
    let max_batch = max_batch.max(1);
    let mut gather: Vec<(usize, FrameId)> = Vec::new();
    let mut batch_frames: Vec<FrameId> = Vec::new();
    let mut batch_owners: Vec<usize> = Vec::new();
    let mut detect_buf: Vec<FrameDetections> = Vec::new();
    for (g, &slot) in detector_slots.iter().enumerate() {
        gather.clear();
        for (w, worker) in workers.iter_mut().enumerate() {
            if worker.fatal.is_some() {
                continue;
            }
            if share_lanes {
                worker.reuse_shared_lane(g, detector_slots);
            }
            gather.extend(worker.lanes[g].misses.iter().map(|&frame| (w, frame)));
        }
        let mut pos = 0;
        while pos < gather.len() {
            batch_frames.clear();
            batch_owners.clear();
            while pos < gather.len() && batch_frames.len() < max_batch {
                let (w, frame) = gather[pos];
                pos += 1;
                // A worker that went fatal earlier in this group contributes
                // nothing further (fail-fast early-return semantics).
                if workers[w].fatal.is_none() {
                    batch_frames.push(frame);
                    batch_owners.push(w);
                }
            }
            if batch_frames.is_empty() {
                continue;
            }
            detect_buf.clear();
            let probe = detectors[g].try_detect_batch(&batch_frames, &mut detect_buf);
            // The physical call belongs to the shard owning the batch's
            // first frame.
            let first = &mut workers[batch_owners[0]];
            first.detector_calls += 1;
            first.record_batches(batch_frames.len() as u64, 1);
            first.per_detector_entry(slot).calls += 1;
            match probe {
                Ok(()) => {
                    for ((&frame, &w), detections) in batch_frames
                        .iter()
                        .zip(&batch_owners)
                        .zip(detect_buf.drain(..))
                    {
                        let worker = &mut workers[w];
                        worker.detector_frames += 1;
                        worker.lane_detected[g] += 1;
                        worker.per_detector_entry(slot).frames += 1;
                        worker.lanes[g].results.insert(frame, Arc::new(detections));
                    }
                }
                Err(_) => {
                    for (&frame, &w) in batch_frames.iter().zip(&batch_owners) {
                        let worker = &mut workers[w];
                        if worker.fatal.is_none() {
                            worker.recover_frame(detectors[g], g, slot, frame, policy);
                        }
                    }
                }
            }
        }
        // Keep only resolved frames in each lane's miss list, in lane order —
        // commit_cache and fan-out read misses as "frames with fresh
        // results", exactly like the per-worker error path leaves them.
        for worker in workers.iter_mut() {
            let Lane {
                misses, results, ..
            } = &mut worker.lanes[g];
            misses.retain(|frame| results.contains_key(frame));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use exsample_detect::ObjectClass;
    use exsample_video::{ChunkingPolicy, ShardPartitioner, VideoRepository};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    fn chunking(frames: u64, chunks: u32) -> Chunking {
        let repo = VideoRepository::single_clip(frames);
        Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks })
    }

    /// A detector with hand-placed faults: each listed transient frame fails
    /// its first `n` attempts, each permanent frame fails every attempt.
    /// Every `try_detect_batch` call charges one attempt to every frame in
    /// the batch, exactly like `FaultInjectingDetector`.
    struct FlakyDetector {
        class: ObjectClass,
        attempts: Mutex<HashMap<FrameId, u32>>,
        transient_until: Vec<(FrameId, u32)>,
        permanent: Vec<FrameId>,
        calls: AtomicU64,
    }

    impl FlakyDetector {
        fn new(transient_until: Vec<(FrameId, u32)>, permanent: Vec<FrameId>) -> Self {
            FlakyDetector {
                class: ObjectClass::from("car"),
                attempts: Mutex::new(HashMap::new()),
                transient_until,
                permanent,
                calls: AtomicU64::new(0),
            }
        }

        fn attempts_on(&self, frame: FrameId) -> u32 {
            *self.attempts.lock().unwrap().get(&frame).unwrap_or(&0)
        }
    }

    impl Detector for FlakyDetector {
        fn detect(&self, frame: FrameId) -> FrameDetections {
            FrameDetections::empty(frame)
        }

        fn class(&self) -> &ObjectClass {
            &self.class
        }

        fn try_detect_batch(
            &self,
            frames: &[FrameId],
            out: &mut Vec<FrameDetections>,
        ) -> Result<(), exsample_detect::DetectError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let mut attempts = self.attempts.lock().unwrap();
            let mut first: Option<exsample_detect::DetectError> = None;
            for &frame in frames {
                let counter = attempts.entry(frame).or_insert(0);
                let current = *counter;
                *counter += 1;
                if first.is_none() {
                    if self.permanent.contains(&frame) {
                        first = Some(exsample_detect::DetectError::Permanent {
                            frame,
                            message: "weights corrupted".to_string(),
                        });
                    } else if self
                        .transient_until
                        .iter()
                        .any(|&(f, until)| f == frame && current < until)
                    {
                        first = Some(exsample_detect::DetectError::Transient {
                            frame,
                            message: "timeout".to_string(),
                        });
                    }
                }
            }
            match first {
                Some(err) => Err(err),
                None => {
                    out.extend(frames.iter().map(|&f| FrameDetections::empty(f)));
                    Ok(())
                }
            }
        }
    }

    /// A worker with `frames` routed into group 0 and probed against `cache`.
    fn faulty_stage_worker(frames: &[FrameId], cache: &StripedDetectionCache) -> ShardWorker {
        let mut worker = ShardWorker::new(0);
        worker.begin_stage(1, 1);
        for &frame in frames {
            worker.push_frame(0, frame);
        }
        // Coalescing off keeps the lane in insertion order, so the tests can
        // pin exactly which frames are attempted before a fail-fast abort.
        worker.probe(&[0], false, Some(cache));
        worker
    }

    /// Run the serial arbitration pass for one worker against `cache`.
    fn arbitrate(worker: &mut ShardWorker, slots: &[DetectorSlot], cache: &StripedDetectionCache) {
        arbitrate_cache(std::slice::from_mut(worker), slots, cache);
    }

    #[test]
    fn failed_frames_are_never_cached_and_a_recovered_retry_commits_once() {
        // Frame 5 fails its first two attempts (batch probe + first per-frame
        // try), frame 9 fails permanently, frame 1 is healthy.
        let detector = FlakyDetector::new(vec![(5, 2)], vec![9]);
        let cache = StripedDetectionCache::new(CacheConfig::new(8));
        let mut worker = faulty_stage_worker(&[1, 5, 9], &cache);
        let policy = DetectPolicy {
            max_attempts: 3,
            backoff_cost: 4,
            fail_fast: false,
        };
        worker.detect(&[&detector], &[0], false, policy);

        // Frame 5 recovered on its retry; frame 9 exhausted its attempts.
        assert!(worker.result(0, 1).is_some());
        assert!(worker.result(0, 5).is_some());
        assert!(worker.result(0, 9).is_none());
        assert_eq!(worker.stage_detected_frames(), 2);
        assert_eq!(worker.stage_failed_frames(), 1);
        assert_eq!(worker.stage_retries, 1, "frame 5 needed one retry");
        assert_eq!(
            worker.stage_backoff, 4,
            "first retry costs backoff_cost * 1"
        );
        assert_eq!(worker.failed_frames, 1);
        assert_eq!(worker.per_detector[0].failures, 1);
        // Permanent errors stop retrying immediately: probe + one per-frame
        // try, despite the 3-attempt budget.
        assert_eq!(detector.attempts_on(9), 2);

        // Cache hygiene: the failed frame is never committed; the recovered
        // one is committed exactly once.
        arbitrate(&mut worker, &[0], &cache);
        assert!(
            cache.probe(0, 9).is_none(),
            "failed frame must not be cached"
        );
        let held = cache.probe(0, 5).expect("recovered frame is cached");
        // Cache entry + lane result + our handle.
        assert_eq!(Arc::strong_count(&held), 3);
        // Releasing the lane leaves exactly one committed handle (plus ours):
        // the retry committed once, not once per attempt.
        worker.begin_stage(1, 1);
        assert_eq!(Arc::strong_count(&held), 2);
        assert_eq!(cache.stats().len, 2);

        // A follow-up stage over the same frames re-detects only frame 9.
        let calls_before = detector.calls.load(Ordering::SeqCst);
        let mut worker = faulty_stage_worker(&[1, 5, 9], &cache);
        worker.detect(&[&detector], &[0], false, policy);
        assert!(
            detector.calls.load(Ordering::SeqCst) > calls_before,
            "frame 9 still misses the cache"
        );
        assert_eq!(worker.stage_detected_frames(), 0, "only frame 9 was missed");
        assert_eq!(worker.stage_failed_frames(), 1);
    }

    #[test]
    fn fail_fast_records_the_first_failure_and_stops_the_lane() {
        let detector = FlakyDetector::new(Vec::new(), vec![9]);
        let cache = StripedDetectionCache::new(CacheConfig::new(8));
        let mut worker = faulty_stage_worker(&[2, 9, 4], &cache);
        worker.detect(&[&detector], &[0], false, DetectPolicy::infallible());
        let fatal = worker
            .fatal
            .as_ref()
            .expect("fail-fast records the failure");
        assert_eq!(fatal.frame, 9);
        assert_eq!(fatal.slot, 0);
        assert_eq!(fatal.attempts, 2, "batch probe + one per-frame try");
        assert!(!fatal.error.is_transient());
        // The lane stopped at the failure: frame 4 was never attempted
        // per-frame (only the probe charged it) and nothing after the
        // failure can reach the cache.
        assert_eq!(detector.attempts_on(4), 1);
        arbitrate(&mut worker, &[0], &cache);
        assert!(cache.probe(0, 9).is_none());
        assert!(cache.probe(0, 4).is_none());
    }

    #[test]
    fn retries_off_fails_transient_frames_without_retrying() {
        let detector = FlakyDetector::new(vec![(5, 2)], Vec::new());
        let cache = StripedDetectionCache::new(CacheConfig::new(8));
        let mut worker = faulty_stage_worker(&[5], &cache);
        let policy = DetectPolicy {
            max_attempts: 1,
            backoff_cost: 10,
            fail_fast: false,
        };
        worker.detect(&[&detector], &[0], false, policy);
        assert!(worker.result(0, 5).is_none());
        assert_eq!(worker.stage_failed_frames(), 1);
        assert_eq!(worker.stage_retries, 0, "no retry budget, no retries");
        assert_eq!(worker.stage_backoff, 0);
        // Probe + the single allowed per-frame try.
        assert_eq!(detector.attempts_on(5), 2);
    }

    #[test]
    fn uncoalesced_same_slot_lanes_dedupe_at_probe_time() {
        let cache = StripedDetectionCache::new(CacheConfig::new(8));
        // Warm frame 3 so the shared frames cover both a hit and a miss.
        cache
            .begin()
            .insert(0, 3, Arc::new(FrameDetections::empty(3)));
        let mut worker = ShardWorker::new(0);
        worker.begin_stage(2, 2);
        for &frame in &[3u64, 7] {
            worker.push_frame(0, frame);
            worker.push_frame(1, frame);
        }
        // Two lanes carry the same detector slot (coalescing off).
        worker.probe(&[0, 0], false, Some(&cache));
        // Each distinct (detector, frame) probes once: 1 hit (frame 3),
        // 1 miss (frame 7) — not two of each, matching the single physical
        // detection frame 7 will cost.
        assert_eq!(worker.stage_cache.hits, 1);
        assert_eq!(worker.stage_cache.misses, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // The second lane shares the hit's result immediately...
        assert!(worker.result(1, 3).is_some());
        // ...and detect resolves the shared miss once, sharing it across
        // both lanes with a single commit.
        let detector = FlakyDetector::new(Vec::new(), Vec::new());
        worker.detect(
            &[&detector, &detector],
            &[0, 0],
            true,
            DetectPolicy::infallible(),
        );
        assert!(worker.result(0, 7).is_some());
        assert!(worker.result(1, 7).is_some());
        assert_eq!(worker.stage_detected_frames(), 1, "frame 7 detected once");
        arbitrate(&mut worker, &[0, 0], &cache);
        assert_eq!(cache.stats().len, 2);
        assert_eq!(cache.stats().misses, 1, "commit does not re-probe");
    }

    #[test]
    fn single_router_maps_everything_to_shard_zero() {
        let router = ShardRouter::single();
        assert_eq!(router.shard_count(), 1);
        for frame in [0u64, 17, u64::MAX] {
            assert_eq!(router.shard_of(frame), 0);
        }
    }

    #[test]
    fn router_agrees_with_the_sharded_repository() {
        let repo = VideoRepository::single_clip(1_000);
        let chunking = Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks: 10 });
        for p in [ShardPartitioner::RoundRobin, ShardPartitioner::Contiguous] {
            let spec = ShardSpec::new(p, chunking.len(), 3);
            let router = ShardRouter::new(&chunking, &spec).unwrap();
            let sharded = ShardedRepository::new(repo.clone(), chunking.clone(), spec);
            for frame in 0..1_000 {
                assert_eq!(
                    router.shard_of(frame) as u32,
                    sharded.shard_of_frame(frame).0,
                    "{p:?} frame {frame}"
                );
            }
            let via_repo = ShardRouter::from_repository(&sharded);
            assert_eq!(via_repo.shard_of(999), router.shard_of(999));
        }
    }

    #[test]
    fn mismatched_spec_is_a_typed_error() {
        let chunking = chunking(100, 4);
        let spec = ShardSpec::contiguous(5, 2);
        let err = ShardRouter::new(&chunking, &spec).unwrap_err();
        assert!(matches!(err, EngineError::ShardSpecMismatch { .. }));
    }

    #[test]
    #[should_panic(expected = "beyond the sharded chunking")]
    fn out_of_range_frame_panics() {
        let chunking = chunking(100, 4);
        let spec = ShardSpec::contiguous(4, 2);
        let router = ShardRouter::new(&chunking, &spec).unwrap();
        let _ = router.shard_of(100);
    }

    #[test]
    #[should_panic(expected = "beyond the sharded chunking")]
    fn chunking_built_single_shard_router_still_checks_bounds() {
        let chunking = chunking(100, 4);
        let spec = ShardSpec::contiguous(4, 1);
        let router = ShardRouter::new(&chunking, &spec).unwrap();
        assert_eq!(router.shard_of(99), 0);
        let _ = router.shard_of(100);
    }
}
