//! Bounded frame→detections caches.
//!
//! The engine already shares detector results across queries *within* a stage
//! (coalescing); this module is the cross-stage landing point the ROADMAP
//! calls for: a long-running service keeps the detections of
//! recently-processed frames so queries arriving later (or re-issued queries)
//! pay zero detector cost for warm frames.  Entries are keyed by
//! `(detector, frame)` — the detector component matters because two detectors
//! (different object classes) produce different detections for the same
//! frame — and stored as `Arc<FrameDetections>`: a warm hit costs the worker
//! lane one `Arc::clone` (a reference-count bump), never a deep copy of the
//! detection list.
//!
//! Two implementations live here:
//!
//! * [`DetectionCache`] — the original single-threaded LRU, retained as the
//!   behavioural reference: the striped cache's eviction order is pinned
//!   against it by a scripted-trace test below.
//! * [`StripedDetectionCache`] — the concurrent cache the engine uses.  The
//!   key space is hashed across `N` lock stripes (per-stripe `Mutex`es), so
//!   workers running on different threads probe concurrently and only
//!   contend when their frames land on the same stripe.  Recency and
//!   eviction are *not* decided under the stripe locks: workers publish
//!   commit intents (their per-lane hit and miss lists) in parallel, and a
//!   serial arbitration pass — [`StripedDetectionCache::begin`] returning a
//!   [`CacheTxn`] — applies all recency touches, then all
//!   admissions/evictions, each kind sorted into canonical `(slot, frame)`
//!   order across workers.  Because membership never changes
//!   between a stage's probes and its arbitration, probe outcomes are a pure
//!   function of the membership set, hit/miss tallies are commutative sums,
//!   and the order log the arbitration replays is identical no matter how
//!   many threads (or stripes) carried the probes.  Cache accounting —
//!   hit/miss/eviction/admission-reject tallies and which entries survive —
//!   is therefore bitwise-identical across every thread count × shard count
//!   × partitioner × dispatch runtime × overlap/aggregation knob, and
//!   bitwise-identical to the legacy serial LRU's eviction sequence.
//!
//! Off by default: caching changes the engine's detector cost accounting
//! (hits bypass `detect_batch`), so the bitwise cost-identity the
//! determinism suite pins between sharded and unsharded runs is stated for
//! cache-off engines.  Query *outcomes* are unaffected either way, because
//! detectors are pure functions of the frame id.  A stage whose every frame
//! is already resident also skips worker-thread dispatch entirely (checked
//! with the tally-free [`StripedDetectionCache::contains`]) — no pool wake,
//! no thread spawn — so a warm engine pays nothing for having parallel
//! execution enabled (pinned by the runtime lifecycle tests).
//!
//! The LRU order uses lazy deletion: every touch pushes a `(key, tick)`
//! entry onto a queue, and eviction pops queue entries until one matches its
//! key's current tick (stale entries — keys touched again later, or already
//! evicted — are discarded).  This keeps both hit and insert O(1) amortised
//! without an intrusive list.  In the striped cache the per-key recency
//! ticks live *beside* the order log in [`LruState`], not in the stripes:
//! ticks are only ever read or written under the serial transaction, so a
//! recency touch never takes a stripe lock at all and a warm hit costs one
//! stripe lookup (the probe) plus one transaction-local map write — cheap
//! enough that the single-threaded probe/commit protocol benches at parity
//! with the legacy serial LRU.  Both internal maps hash with the same
//! deterministic SplitMix64 mixer used for stripe selection instead of the
//! standard library's SipHash, which is measurably faster on these small
//! fixed-width keys and keeps every internal decision reproducible across
//! processes.
//!
//! An optional frequency-sketch admission policy
//! ([`AdmissionPolicy::Frequency`], off by default) fronts the LRU with a
//! hand-rolled count-min sketch: a brand-new key arriving while the cache is
//! full is admitted only if its estimated access frequency is at least the
//! eviction candidate's, so a one-pass churning scan cannot flush a hot
//! working set.  The sketch is only ever updated during serial arbitration,
//! so admission decisions are as deterministic as the rest of the
//! accounting.

use exsample_detect::FrameDetections;
use exsample_video::FrameId;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

/// Identifier of a distinct detector instance (assigned by the engine in
/// first-seen order; see `QueryEngine`'s detector registry).
pub type DetectorSlot = u32;

/// Cache key: one detector's view of one frame.
type Key = (DetectorSlot, FrameId);

/// Cache hit/miss/eviction counters.
///
/// Hits and misses are counted at probe time, evictions and admission
/// rejects at commit arbitration.  With coalescing *off*, two same-stage
/// lanes sharing a detector dedupe at probe time: the second lane reuses the
/// first lane's probe outcome directly (sharing its result or joining its
/// miss) without touching the cache, so a frame they have in common counts
/// once — matching the single physical detection it costs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the detector.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Inserts refused by the admission policy (always zero under
    /// [`AdmissionPolicy::Always`] and for the legacy serial LRU).
    pub admission_rejects: u64,
    /// Entries currently resident.
    pub len: usize,
}

/// Cache activity attributed to one scope (a stage, a shard, or a whole
/// run): the flow counters of [`CacheStats`] without the resident-size
/// snapshot.
///
/// Workers tally their own probe and commit outcomes into these, which is
/// what lets per-shard telemetry roll up: summing every shard's activity
/// reproduces the engine-level totals exactly (pinned by the merge layer's
/// cross-check).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheActivity {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the detector.
    pub misses: u64,
    /// Evictions triggered by this scope's inserts.
    pub evictions: u64,
    /// Inserts refused by the admission policy.
    pub admission_rejects: u64,
}

impl CacheActivity {
    /// Fold another tally into this one.
    pub fn absorb(&mut self, other: CacheActivity) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.admission_rejects += other.admission_rejects;
    }
}

/// How the striped cache decides whether a brand-new key may displace a
/// resident entry when the cache is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Every insert is admitted; the least-recently-used entry is evicted to
    /// make room.  This matches the legacy serial LRU exactly.
    #[default]
    Always,
    /// TinyLFU-style frequency gate: a count-min sketch tracks access
    /// frequency, and a new key arriving at capacity is admitted only if its
    /// estimated frequency is at least the LRU victim's.  Protects a hot
    /// working set from one-pass scans at the cost of slower adaptation.
    Frequency,
}

/// Configuration for a [`StripedDetectionCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    pub(crate) capacity: usize,
    pub(crate) stripes: usize,
    pub(crate) admission: AdmissionPolicy,
}

/// Default lock-stripe count; enough to keep 4-way parallel probes from
/// serialising while staying cheap to fold for `stats()`.
const DEFAULT_STRIPES: usize = 8;

impl CacheConfig {
    /// A cache holding at most `capacity` frame entries, with the default
    /// stripe count and admission policy (admit always, like the legacy
    /// LRU).
    pub fn new(capacity: usize) -> Self {
        CacheConfig {
            capacity,
            stripes: DEFAULT_STRIPES,
            admission: AdmissionPolicy::Always,
        }
    }

    /// Set the lock-stripe count (rounded up to a power of two, capped at
    /// 1024).  Stripe count affects only contention, never accounting.
    pub fn stripes(mut self, stripes: usize) -> Self {
        self.stripes = stripes;
        self
    }

    /// Set the admission policy.
    pub fn admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requested lock-stripe count (before power-of-two rounding).
    pub fn stripe_count(&self) -> usize {
        self.stripes
    }
}

struct CacheEntry {
    detections: Arc<FrameDetections>,
    /// Tick of the entry's most recent touch; queue entries with an older
    /// tick are stale.
    tick: u64,
}

/// A bounded LRU map from `(detector, frame)` to detections.
pub struct DetectionCache {
    capacity: usize,
    map: HashMap<Key, CacheEntry>,
    /// Touch log for lazy-deletion LRU: front = least recent candidate.
    order: VecDeque<(Key, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl DetectionCache {
    /// Create a cache holding at most `capacity` frame entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (use "no cache" instead of an empty one).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        DetectionCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            order: VecDeque::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            admission_rejects: 0,
            len: self.map.len(),
        }
    }

    /// Look up a frame's detections, refreshing its recency on a hit.
    ///
    /// Returns the shared handle so callers keep the detections with an
    /// `Arc::clone` — a pointer bump, never a deep copy.
    pub fn get(&mut self, detector: DetectorSlot, frame: FrameId) -> Option<&Arc<FrameDetections>> {
        self.compact_if_bloated();
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&(detector, frame)) {
            Some(entry) => {
                entry.tick = tick;
                self.order.push_back(((detector, frame), tick));
                self.hits += 1;
                Some(&entry.detections)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a frame's detections, evicting the least-recently-used entry if
    /// the cache is full.  Inserting an already-resident key refreshes it.
    pub fn insert(
        &mut self,
        detector: DetectorSlot,
        frame: FrameId,
        detections: Arc<FrameDetections>,
    ) {
        self.tick += 1;
        let tick = self.tick;
        if self
            .map
            .insert((detector, frame), CacheEntry { detections, tick })
            .is_none()
            && self.map.len() > self.capacity
        {
            self.evict_one();
        }
        self.order.push_back(((detector, frame), tick));
        self.compact_if_bloated();
    }

    /// Drop stale touch-log entries once the log outgrows the live map.
    ///
    /// The lazy-deletion scheme only pops the log on evictions, so a fully
    /// warm, hit-dominated cache (the long-running-service shape) would
    /// otherwise grow the log by one entry per lookup forever.  Each retained
    /// entry's tick matches its key's current tick, so exactly one live log
    /// entry per resident key survives; the O(len) sweep is amortised by the
    /// 2× growth threshold.
    fn compact_if_bloated(&mut self) {
        if self.order.len() <= self.capacity.max(self.map.len()) * 2 {
            return;
        }
        let map = &self.map;
        self.order
            .retain(|(key, tick)| map.get(key).is_some_and(|entry| entry.tick == *tick));
    }

    /// Pop stale touch-log entries until one names the genuinely
    /// least-recently-used resident entry, and evict it.
    fn evict_one(&mut self) {
        while let Some((key, tick)) = self.order.pop_front() {
            let current = match self.map.get(&key) {
                Some(entry) => entry.tick,
                None => continue, // already evicted under a newer touch
            };
            if current != tick {
                continue; // touched again later; a fresher log entry exists
            }
            self.map.remove(&key);
            self.evictions += 1;
            return;
        }
        unreachable!("an over-capacity cache always has an evictable entry");
    }
}

impl std::fmt::Debug for DetectionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectionCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

/// SplitMix64 finalizer: a cheap, statistically strong bit mixer.  Used for
/// stripe selection and the sketch's row hashes so neither depends on the
/// standard library's randomised `HashMap` state — cache accounting must be
/// reproducible across processes.
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    h
}

/// Deterministic key hash seeding stripe selection and the sketch rows.
fn key_hash((slot, frame): Key, seed: u64) -> u64 {
    mix64(frame ^ u64::from(slot).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed)
}

/// Fixed seed for stripe selection (any constant works; determinism is the
/// point).
const STRIPE_SEED: u64 = 0xE55A_171E_5EED;

/// Deterministic [`std::hash::Hasher`] over the [`mix64`] finalizer, used by
/// the striped cache's internal maps instead of the standard library's
/// SipHash: the keys are small fixed-width integers an adversary never
/// controls, SipHash costs several times more per lookup, and a
/// process-independent hash keeps every internal decision reproducible.
#[derive(Default)]
struct Mix64Hasher(u64);

impl std::hash::Hasher for Mix64Hasher {
    fn finish(&self) -> u64 {
        mix64(self.0)
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the `(u32, u64)` keys): FNV-style fold.
        for &byte in bytes {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x0100_0000_01B3);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = self.0.rotate_left(31) ^ u64::from(n);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = self.0.rotate_left(31) ^ n;
    }
}

type Mix64Build = std::hash::BuildHasherDefault<Mix64Hasher>;

/// Per-row seeds for the count-min sketch.
const SKETCH_ROW_SEEDS: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
    0xFF51_AFD7_ED55_8CCD,
];

/// Hand-rolled count-min sketch approximating per-key access frequency for
/// the [`AdmissionPolicy::Frequency`] gate.
///
/// Four rows of saturating 4-bit-equivalent counters (stored as `u32`, halved
/// wholesale every `sample_period` additions so stale popularity decays).
/// Only ever mutated during serial commit arbitration, so estimates are
/// deterministic.
struct CountMinSketch {
    /// Row width minus one (width is a power of two).
    width_mask: u64,
    /// Four rows stored flat: `rows[row * width + column]`.
    rows: Vec<u32>,
    additions: u64,
    sample_period: u64,
}

impl CountMinSketch {
    fn new(capacity: usize) -> Self {
        let width = capacity.next_power_of_two().max(64);
        CountMinSketch {
            width_mask: (width - 1) as u64,
            rows: vec![0; width * SKETCH_ROW_SEEDS.len()],
            additions: 0,
            sample_period: (capacity as u64 * 16).max(1024),
        }
    }

    fn record(&mut self, key: Key) {
        let width = (self.width_mask + 1) as usize;
        for (row, seed) in SKETCH_ROW_SEEDS.iter().enumerate() {
            let column = (key_hash(key, *seed) & self.width_mask) as usize;
            let cell = &mut self.rows[row * width + column];
            *cell = cell.saturating_add(1);
        }
        self.additions += 1;
        if self.additions >= self.sample_period {
            for cell in &mut self.rows {
                *cell /= 2;
            }
            self.additions = 0;
        }
    }

    fn estimate(&self, key: Key) -> u32 {
        let width = (self.width_mask + 1) as usize;
        SKETCH_ROW_SEEDS
            .iter()
            .enumerate()
            .map(|(row, seed)| {
                let column = (key_hash(key, *seed) & self.width_mask) as usize;
                self.rows[row * width + column]
            })
            .min()
            .unwrap_or(0)
    }
}

/// One lock stripe: a slice of the key space plus the probe tallies for keys
/// that hash here.  Stripes hold only membership and payloads — recency
/// lives in [`LruState`], so probes and touches never contend on the same
/// lock.
#[derive(Default)]
struct Stripe {
    map: HashMap<Key, Arc<FrameDetections>, Mix64Build>,
    hits: u64,
    misses: u64,
    evictions: u64,
    admission_rejects: u64,
}

/// Global recency/eviction state, touched only under serial arbitration.
struct LruState {
    /// Touch log for lazy-deletion LRU: front = least recent candidate.
    order: VecDeque<(Key, u64)>,
    tick: u64,
    /// Current tick of every resident key — the staleness authority for the
    /// order log.  Kept here rather than in the stripe entries so recency
    /// replay is transaction-local: a touch is one map write under the LRU
    /// lock the transaction already holds, no stripe lock.  Its length is
    /// the total resident count across all stripes.
    ticks: HashMap<Key, u64, Mix64Build>,
    sketch: Option<CountMinSketch>,
}

/// A lock-striped, key-sharded concurrent LRU map from `(detector, frame)`
/// to detections.
///
/// Membership and probe tallies live in per-stripe `Mutex`es (probes from
/// different threads contend only when their keys share a stripe); recency
/// and eviction live in a single [`LruState`] that is only ever mutated
/// through a [`CacheTxn`] during the engine's serial commit arbitration.
/// See the module docs for the determinism argument.
pub struct StripedDetectionCache {
    capacity: usize,
    admission: AdmissionPolicy,
    /// Stripe index mask (stripe count is a power of two).
    mask: u64,
    stripes: Box<[Mutex<Stripe>]>,
    lru: Mutex<LruState>,
}

impl StripedDetectionCache {
    /// Create a striped cache from a validated configuration.
    ///
    /// # Panics
    /// Panics if the configured capacity or stripe count is zero (the engine
    /// surfaces these as a typed error before construction).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.capacity > 0, "cache capacity must be positive");
        assert!(config.stripes > 0, "cache stripe count must be positive");
        let stripes = config.stripes.next_power_of_two().min(1024);
        let sketch = match config.admission {
            AdmissionPolicy::Always => None,
            AdmissionPolicy::Frequency => Some(CountMinSketch::new(config.capacity)),
        };
        StripedDetectionCache {
            capacity: config.capacity,
            admission: config.admission,
            mask: (stripes - 1) as u64,
            stripes: (0..stripes)
                .map(|_| Mutex::new(Stripe::default()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            lru: Mutex::new(LruState {
                order: VecDeque::new(),
                tick: 0,
                ticks: HashMap::default(),
                sketch,
            }),
        }
    }

    /// Maximum number of resident entries (across all stripes).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock stripes (after power-of-two rounding).
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Configured admission policy.
    pub fn admission(&self) -> AdmissionPolicy {
        self.admission
    }

    fn stripe_of(&self, key: Key) -> usize {
        (key_hash(key, STRIPE_SEED) & self.mask) as usize
    }

    fn stripe(&self, key: Key) -> MutexGuard<'_, Stripe> {
        self.stripes[self.stripe_of(key)]
            .lock()
            .expect("cache stripe poisoned")
    }

    /// Look up a frame's detections, tallying a hit or miss on the key's
    /// stripe.  Safe to call from any worker thread; recency is *not*
    /// refreshed here — the worker records the hit and the arbitration pass
    /// replays it as a [`CacheTxn::touch`] in deterministic order.
    ///
    /// Public so benchmarks and external harnesses can drive the same
    /// probe/commit protocol the engine uses; production callers go through
    /// [`crate::QueryEngine`].
    pub fn probe(&self, detector: DetectorSlot, frame: FrameId) -> Option<Arc<FrameDetections>> {
        let mut stripe = self.stripe((detector, frame));
        match stripe.map.get(&(detector, frame)) {
            Some(detections) => {
                let detections = Arc::clone(detections);
                stripe.hits += 1;
                Some(detections)
            }
            None => {
                stripe.misses += 1;
                None
            }
        }
    }

    /// Tally-free membership check, used by the engine's warm-stage
    /// dispatch-skip decision (which must not perturb the accounting the
    /// workers will produce when they probe for real).
    pub(crate) fn contains(&self, detector: DetectorSlot, frame: FrameId) -> bool {
        self.stripe((detector, frame))
            .map
            .contains_key(&(detector, frame))
    }

    /// Aggregate hit/miss/eviction counters across all stripes.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for stripe in self.stripes.iter() {
            let stripe = stripe.lock().expect("cache stripe poisoned");
            stats.hits += stripe.hits;
            stats.misses += stripe.misses;
            stats.evictions += stripe.evictions;
            stats.admission_rejects += stripe.admission_rejects;
            stats.len += stripe.map.len();
        }
        stats
    }

    /// Per-stripe counters, in stripe order (for contention diagnostics).
    pub fn stripe_stats(&self) -> Vec<CacheStats> {
        self.stripes
            .iter()
            .map(|stripe| {
                let stripe = stripe.lock().expect("cache stripe poisoned");
                CacheStats {
                    hits: stripe.hits,
                    misses: stripe.misses,
                    evictions: stripe.evictions,
                    admission_rejects: stripe.admission_rejects,
                    len: stripe.map.len(),
                }
            })
            .collect()
    }

    /// Open the serial arbitration transaction.  The caller (the engine's
    /// commit boundary) holds the only handle that can change recency or
    /// membership-with-eviction, and applies workers' published intents in
    /// canonical `(slot, frame)` order.
    pub fn begin(&self) -> CacheTxn<'_> {
        CacheTxn {
            cache: self,
            lru: self.lru.lock().expect("cache LRU state poisoned"),
        }
    }
}

impl std::fmt::Debug for StripedDetectionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripedDetectionCache")
            .field("capacity", &self.capacity)
            .field("stripes", &self.stripes.len())
            .field("admission", &self.admission)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Outcome of one arbitration insert: how many entries it displaced and
/// whether the admission policy refused it.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitOutcome {
    /// Entries evicted to make room for this insert (0 or 1).
    pub evicted: u64,
    /// Whether the frequency-admission gate refused the insert.
    pub rejected: bool,
}

/// Serial arbitration handle over the striped cache's recency and eviction
/// state.
///
/// Exactly one transaction exists per commit boundary; while it lives, the
/// order log, tick counter, and admission sketch are mutated in the
/// canonical deterministic replay order (all hit touches, then all miss
/// inserts, each kind sorted by `(slot, frame)` across workers — an order
/// that depends only on the frames involved, never on the shard layout or
/// thread placement).
pub struct CacheTxn<'c> {
    cache: &'c StripedDetectionCache,
    lru: MutexGuard<'c, LruState>,
}

impl CacheTxn<'_> {
    /// Replay one probe hit: refresh the key's recency (and feed the
    /// admission sketch).  A key evicted since its probe is skipped — this
    /// cannot happen within one stage (touches precede inserts), but the
    /// guard keeps the log free of dangling entries regardless.
    pub fn touch(&mut self, detector: DetectorSlot, frame: FrameId) {
        let key = (detector, frame);
        if let Some(sketch) = self.lru.sketch.as_mut() {
            sketch.record(key);
        }
        self.compact_if_bloated();
        let lru = &mut *self.lru;
        lru.tick += 1;
        let tick = lru.tick;
        if let Some(current) = lru.ticks.get_mut(&key) {
            *current = tick;
            lru.order.push_back((key, tick));
        }
    }

    /// Replay one probe miss's fill: admit (or reject) the detections,
    /// evicting the least-recently-used entry if the cache is over capacity.
    /// Inserting an already-resident key refreshes it.
    pub fn insert(
        &mut self,
        detector: DetectorSlot,
        frame: FrameId,
        detections: Arc<FrameDetections>,
    ) -> CommitOutcome {
        let key = (detector, frame);
        if let Some(sketch) = self.lru.sketch.as_mut() {
            sketch.record(key);
        }
        let mut outcome = CommitOutcome::default();
        if self.lru.sketch.is_some() && self.lru.ticks.len() >= self.cache.capacity {
            let resident = self.lru.ticks.contains_key(&key);
            if !resident {
                if let Some(victim) = self.peek_victim() {
                    let sketch = self.lru.sketch.as_ref().expect("sketch checked above");
                    if sketch.estimate(key) < sketch.estimate(victim) {
                        self.cache.stripe(key).admission_rejects += 1;
                        outcome.rejected = true;
                        return outcome;
                    }
                }
            }
        }
        self.lru.tick += 1;
        let tick = self.lru.tick;
        self.cache.stripe(key).map.insert(key, detections);
        let was_new = self.lru.ticks.insert(key, tick).is_none();
        if was_new && self.lru.ticks.len() > self.cache.capacity {
            self.evict_one();
            outcome.evicted = 1;
        }
        self.lru.order.push_back((key, tick));
        self.compact_if_bloated();
        outcome
    }

    /// Find (without removing) the key the next eviction would claim,
    /// discarding stale log entries along the way.
    fn peek_victim(&mut self) -> Option<Key> {
        let lru = &mut *self.lru;
        while let Some((key, tick)) = lru.order.front().copied() {
            if lru.ticks.get(&key) == Some(&tick) {
                return Some(key);
            }
            lru.order.pop_front();
        }
        None
    }

    /// Pop stale touch-log entries until one names the genuinely
    /// least-recently-used resident entry, and evict it from its stripe.
    fn evict_one(&mut self) {
        let cache = self.cache;
        let lru = &mut *self.lru;
        while let Some((key, tick)) = lru.order.pop_front() {
            // Stale entries — keys already evicted, or touched again under a
            // newer tick — are discarded without a stripe lock.
            if lru.ticks.get(&key) != Some(&tick) {
                continue;
            }
            lru.ticks.remove(&key);
            let mut stripe = cache.stripe(key);
            stripe.map.remove(&key);
            stripe.evictions += 1;
            return;
        }
        unreachable!("an over-capacity cache always has an evictable entry");
    }

    /// Drop stale touch-log entries once the log outgrows the live map (same
    /// amortisation argument as the legacy cache).
    fn compact_if_bloated(&mut self) {
        let capacity = self.cache.capacity;
        let LruState { order, ticks, .. } = &mut *self.lru;
        if order.len() <= capacity.max(ticks.len()) * 2 {
            return;
        }
        order.retain(|(key, tick)| ticks.get(key) == Some(tick));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detections(frame: FrameId) -> Arc<FrameDetections> {
        // Only identity matters for these tests; an empty per-frame detection
        // list is enough.
        Arc::new(FrameDetections::empty(frame))
    }

    #[test]
    fn warm_hit_shares_the_entry_instead_of_deep_copying() {
        let mut cache = DetectionCache::new(4);
        let original = detections(9);
        cache.insert(0, 9, Arc::clone(&original));
        assert_eq!(Arc::strong_count(&original), 2, "cache holds one handle");
        // A hit hands back the same allocation; keeping it is a pointer bump.
        let held = Arc::clone(cache.get(0, 9).expect("warm hit"));
        assert!(
            Arc::ptr_eq(&held, &original),
            "hit must share the inserted allocation"
        );
        assert_eq!(
            Arc::strong_count(&original),
            3,
            "hit cloned the handle, not the detections"
        );
        drop(held);
        assert_eq!(Arc::strong_count(&original), 2);
    }

    #[test]
    fn hit_after_insert_and_miss_before() {
        let mut cache = DetectionCache::new(4);
        assert!(cache.get(0, 7).is_none());
        cache.insert(0, 7, detections(1));
        assert!(cache.get(0, 7).is_some());
        // Same frame under a different detector is a distinct key.
        assert!(cache.get(1, 7).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 2, 1));
    }

    #[test]
    fn capacity_is_enforced_with_lru_eviction() {
        let mut cache = DetectionCache::new(2);
        cache.insert(0, 1, detections(1));
        cache.insert(0, 2, detections(2));
        // Touch frame 1 so frame 2 is now least recently used.
        assert!(cache.get(0, 1).is_some());
        cache.insert(0, 3, detections(3));
        assert!(cache.get(0, 2).is_none(), "LRU entry should be evicted");
        assert!(cache.get(0, 1).is_some());
        assert!(cache.get(0, 3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.len, 2);
    }

    #[test]
    fn reinserting_a_resident_key_refreshes_without_eviction() {
        let mut cache = DetectionCache::new(2);
        cache.insert(0, 1, detections(1));
        cache.insert(0, 2, detections(2));
        cache.insert(0, 1, detections(1));
        assert_eq!(cache.stats().evictions, 0);
        // Frame 2 is now the LRU entry.
        cache.insert(0, 3, detections(3));
        assert!(cache.get(0, 2).is_none());
        assert!(cache.get(0, 1).is_some());
    }

    #[test]
    fn touch_log_stays_bounded_under_hit_dominated_load() {
        // A fully warm cache never evicts, so without compaction the touch
        // log would grow by one entry per hit forever.
        let mut cache = DetectionCache::new(8);
        for frame in 0..8u64 {
            cache.insert(0, frame, detections(frame));
        }
        for round in 0..10_000u64 {
            assert!(cache.get(0, round % 8).is_some());
        }
        assert!(
            cache.order.len() <= cache.capacity * 2 + 1,
            "touch log grew to {} entries",
            cache.order.len()
        );
        assert_eq!(cache.stats().hits, 10_000);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = DetectionCache::new(0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn striped_zero_capacity_panics() {
        let _ = StripedDetectionCache::new(CacheConfig::new(0));
    }

    #[test]
    #[should_panic(expected = "stripe count must be positive")]
    fn striped_zero_stripes_panics() {
        let _ = StripedDetectionCache::new(CacheConfig::new(4).stripes(0));
    }

    #[test]
    fn stripe_count_rounds_to_power_of_two() {
        let cache = StripedDetectionCache::new(CacheConfig::new(4).stripes(3));
        assert_eq!(cache.stripe_count(), 4);
        let cache = StripedDetectionCache::new(CacheConfig::new(4).stripes(8));
        assert_eq!(cache.stripe_count(), 8);
    }

    #[test]
    fn striped_probe_commit_round_trip() {
        let cache = StripedDetectionCache::new(CacheConfig::new(4));
        assert!(cache.probe(0, 7).is_none());
        let original = detections(7);
        {
            let mut txn = cache.begin();
            let outcome = txn.insert(0, 7, Arc::clone(&original));
            assert_eq!(outcome.evicted, 0);
            assert!(!outcome.rejected);
        }
        let held = cache.probe(0, 7).expect("warm hit");
        assert!(Arc::ptr_eq(&held, &original), "hit shares the allocation");
        assert!(cache.probe(1, 7).is_none(), "detector is part of the key");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 2, 1));
        assert!(cache.contains(0, 7));
        // `contains` must not perturb the tallies.
        assert_eq!(cache.stats(), stats);
    }

    /// Satellite: the striped cache's eviction sequence is pinned against
    /// the legacy serial LRU for a scripted probe/commit trace, at two
    /// different stripe counts.  Each "stage" of the script probes a batch
    /// of keys and then commits the misses, exactly as the engine drives
    /// both implementations; after every stage the two caches must agree on
    /// stats, membership, and therefore on which entry each eviction
    /// claimed.
    #[test]
    fn striped_eviction_sequence_matches_legacy_serial_lru() {
        // Overlapping windows over a small key space with capacity 4 force
        // repeated evictions whose victims depend on exact LRU order.
        let script: &[&[(DetectorSlot, FrameId)]] = &[
            &[(0, 1), (0, 2), (0, 3), (0, 4)],
            &[(0, 3), (0, 4), (0, 5), (0, 6)], // evicts 1, 2
            &[(0, 1), (0, 5), (1, 1)],         // evicts 3, 4 (1 re-enters)
            &[(0, 6), (0, 2), (0, 5)],         // evicts the re-entered (0,1)
            &[(1, 1), (0, 3), (0, 6), (0, 2)],
            &[(0, 5), (0, 5), (0, 4)], // duplicate probe within a stage
        ];
        let universe: Vec<Key> = (0..2u32)
            .flat_map(|d| (0..8u64).map(move |f| (d, f)))
            .collect();

        for stripes in [1usize, 4] {
            let mut legacy = DetectionCache::new(4);
            let striped = StripedDetectionCache::new(CacheConfig::new(4).stripes(stripes));
            for (stage, batch) in script.iter().enumerate() {
                // Probe phase: legacy touches on hit; striped records the
                // outcome for arbitration replay.
                let mut hits = Vec::new();
                let mut misses = Vec::new();
                for &(slot, frame) in *batch {
                    let legacy_hit = legacy.get(slot, frame).is_some();
                    let striped_hit = striped.probe(slot, frame).is_some();
                    assert_eq!(
                        legacy_hit, striped_hit,
                        "stage {stage}: probe ({slot},{frame}) outcome diverged"
                    );
                    if striped_hit {
                        hits.push((slot, frame));
                    } else {
                        misses.push((slot, frame));
                    }
                }
                // Commit phase: replay touches in probe order, then fill
                // misses in order — the engine's arbitration sequence.
                {
                    let mut txn = striped.begin();
                    for &(slot, frame) in &hits {
                        txn.touch(slot, frame);
                    }
                    for &(slot, frame) in &misses {
                        txn.insert(slot, frame, detections(frame));
                    }
                }
                for &(slot, frame) in &misses {
                    legacy.insert(slot, frame, detections(frame));
                }
                // The caches must agree on every counter and on exactly
                // which keys survived — i.e. the eviction sequences match.
                let legacy_stats = legacy.stats();
                let striped_stats = striped.stats();
                assert_eq!(
                    (legacy_stats.evictions, legacy_stats.len),
                    (striped_stats.evictions, striped_stats.len),
                    "stage {stage} (stripes {stripes}): eviction accounting diverged"
                );
                for &(slot, frame) in &universe {
                    assert_eq!(
                        legacy.map.contains_key(&(slot, frame)),
                        striped.contains(slot, frame),
                        "stage {stage} (stripes {stripes}): membership of ({slot},{frame}) diverged"
                    );
                }
            }
            // The script's duplicate probes make hit/miss totals differ from
            // a naive per-key count; they must still match the reference.
            assert_eq!(legacy.stats().hits, striped.stats().hits);
            assert_eq!(legacy.stats().misses, striped.stats().misses);
            assert!(
                striped.stats().evictions > 0,
                "script must exercise eviction"
            );
        }
    }

    #[test]
    fn striped_accounting_is_stripe_count_invariant() {
        let mut reference: Option<CacheStats> = None;
        for stripes in [1usize, 2, 8, 64] {
            let cache = StripedDetectionCache::new(CacheConfig::new(8).stripes(stripes));
            for frame in 0..32u64 {
                let hit = cache.probe(0, frame % 12).is_some();
                let mut txn = cache.begin();
                if hit {
                    txn.touch(0, frame % 12);
                } else {
                    txn.insert(0, frame % 12, detections(frame % 12));
                }
            }
            let stats = cache.stats();
            match &reference {
                Some(expected) => assert_eq!(stats, *expected, "stripes {stripes} diverged"),
                None => reference = Some(stats),
            }
            // Per-stripe telemetry folds back to the aggregate view.
            let folded = cache
                .stripe_stats()
                .iter()
                .fold(CacheStats::default(), |mut acc, s| {
                    acc.hits += s.hits;
                    acc.misses += s.misses;
                    acc.evictions += s.evictions;
                    acc.admission_rejects += s.admission_rejects;
                    acc.len += s.len;
                    acc
                });
            assert_eq!(folded, stats);
        }
    }

    #[test]
    fn frequency_admission_shields_a_hot_working_set_from_a_scan() {
        let cache =
            StripedDetectionCache::new(CacheConfig::new(4).admission(AdmissionPolicy::Frequency));
        // Warm a hot working set and touch it repeatedly so the sketch
        // learns its frequency.
        for frame in 0..4u64 {
            cache.begin().insert(0, frame, detections(frame));
        }
        for _ in 0..4 {
            for frame in 0..4u64 {
                assert!(cache.probe(0, frame).is_some());
                cache.begin().touch(0, frame);
            }
        }
        // A one-pass cold scan: every candidate has sketch frequency 1 vs
        // the victims' 5, so none is admitted and the working set survives.
        for frame in 100..116u64 {
            assert!(cache.probe(0, frame).is_none());
            let outcome = cache.begin().insert(0, frame, detections(frame));
            assert!(outcome.rejected, "cold scan frame {frame} was admitted");
        }
        for frame in 0..4u64 {
            assert!(cache.contains(0, frame), "hot frame {frame} was evicted");
        }
        let stats = cache.stats();
        assert_eq!(stats.admission_rejects, 16);
        assert_eq!(stats.evictions, 0);
        // A candidate that earns frequency eventually displaces the coldest
        // resident entry: each insert attempt records it in the sketch, so
        // it is rejected while its count trails the victims' 5 (one insert
        // plus four touches each) and admitted on the attempt that ties.
        for attempt in 1..=4 {
            assert!(
                cache.probe(0, 200).is_none(),
                "newcomer admitted after only {attempt} attempts"
            );
            let outcome = cache.begin().insert(0, 200, detections(200));
            assert!(outcome.rejected);
        }
        let outcome = cache.begin().insert(0, 200, detections(200));
        assert!(!outcome.rejected, "tying the victim's count must admit");
        assert!(cache.contains(0, 200), "hot newcomer must be admitted");
    }

    #[test]
    fn always_admission_never_rejects() {
        let cache = StripedDetectionCache::new(CacheConfig::new(2));
        for frame in 0..16u64 {
            let outcome = cache.begin().insert(0, frame, detections(frame));
            assert!(!outcome.rejected);
        }
        let stats = cache.stats();
        assert_eq!(stats.admission_rejects, 0);
        assert_eq!(stats.evictions, 14);
        assert_eq!(stats.len, 2);
    }

    #[test]
    fn striped_touch_log_stays_bounded_under_hit_dominated_load() {
        let cache = StripedDetectionCache::new(CacheConfig::new(8).stripes(2));
        for frame in 0..8u64 {
            cache.begin().insert(0, frame, detections(frame));
        }
        for round in 0..10_000u64 {
            assert!(cache.probe(0, round % 8).is_some());
            cache.begin().touch(0, round % 8);
        }
        let order_len = cache.lru.lock().unwrap().order.len();
        assert!(
            order_len <= cache.capacity() * 2 + 1,
            "touch log grew to {order_len} entries"
        );
        assert_eq!(cache.stats().hits, 10_000);
        assert_eq!(cache.stats().evictions, 0);
    }
}
