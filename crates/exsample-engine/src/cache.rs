//! A bounded frame→detections cache.
//!
//! The engine already shares detector results across queries *within* a stage
//! (coalescing); this cache is the cross-stage landing point the ROADMAP calls
//! for: a long-running service keeps the detections of recently-processed
//! frames so queries arriving later (or re-issued queries) pay zero detector
//! cost for warm frames.  It is a capacity-limited map with
//! least-recently-used eviction, keyed by `(detector, frame)` — the detector
//! component matters because two detectors (different object classes) produce
//! different detections for the same frame.
//!
//! Entries are stored as `Arc<FrameDetections>` and handed out by reference:
//! a warm hit costs the worker lane one `Arc::clone` (a reference-count bump),
//! never a deep copy of the detection list — and the same `Arc` sharing is
//! what will let one cache back several engines in the service shape.
//!
//! Off by default: caching changes the engine's detector cost accounting (hits
//! bypass `detect_batch`), so the bitwise cost-identity the determinism suite
//! pins between sharded and unsharded runs is stated for cache-off engines.
//! Query *outcomes* are unaffected either way, because detectors are pure
//! functions of the frame id.  The engine probes and fills the cache in a
//! fixed order (worker-major, lane-major, frame order) in *every* execution
//! mode, so cache state — and therefore the cost accounting of cached runs —
//! is identical between serial and parallel execution (either dispatch
//! runtime).  Under stage overlap the probe runs at the *commit boundary*
//! (after the previous stage's commit, before this stage's detect is
//! dispatched), which keeps that fixed probe/commit interleaving — and hence
//! bitwise-identical cache accounting — across the overlapped execution
//! matrix too.  A stage whose every frame is answered by the probe also skips
//! worker-thread dispatch entirely — no pool wake, no thread spawn — so a
//! warm engine pays nothing for having parallel execution enabled (pinned by
//! the runtime lifecycle tests).
//!
//! The LRU order uses lazy deletion: every touch pushes a `(key, tick)` entry
//! onto a queue, and eviction pops queue entries until one matches its key's
//! current tick (stale entries — keys touched again later, or already evicted
//! — are discarded).  This keeps both hit and insert O(1) amortised without an
//! intrusive list.

use exsample_detect::FrameDetections;
use exsample_video::FrameId;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Engine-internal identifier of a distinct detector instance (assigned in
/// first-seen order; see `QueryEngine`'s detector registry).
pub(crate) type DetectorSlot = u32;

/// Cache hit/miss/eviction counters.
///
/// Counted at the serial probe pass only.  One consequence of the probe →
/// detect → commit phase split: with coalescing *off*, two same-stage lanes
/// sharing a detector both probe before either detects, so a frame they have
/// in common counts as two misses even though it is detected only once (the
/// lanes share results directly, not through the cache).  Hit-rate telemetry
/// should therefore be read against coalesced (default) engines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the detector.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
}

struct CacheEntry {
    detections: Arc<FrameDetections>,
    /// Tick of the entry's most recent touch; queue entries with an older
    /// tick are stale.
    tick: u64,
}

/// A bounded LRU map from `(detector, frame)` to detections.
pub struct DetectionCache {
    capacity: usize,
    map: HashMap<(DetectorSlot, FrameId), CacheEntry>,
    /// Touch log for lazy-deletion LRU: front = least recent candidate.
    order: VecDeque<((DetectorSlot, FrameId), u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl DetectionCache {
    /// Create a cache holding at most `capacity` frame entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (use "no cache" instead of an empty one).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        DetectionCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            order: VecDeque::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.map.len(),
        }
    }

    /// Look up a frame's detections, refreshing its recency on a hit.
    ///
    /// Returns the shared handle so callers keep the detections with an
    /// `Arc::clone` — a pointer bump, never a deep copy.
    pub(crate) fn get(
        &mut self,
        detector: DetectorSlot,
        frame: FrameId,
    ) -> Option<&Arc<FrameDetections>> {
        self.compact_if_bloated();
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&(detector, frame)) {
            Some(entry) => {
                entry.tick = tick;
                self.order.push_back(((detector, frame), tick));
                self.hits += 1;
                Some(&entry.detections)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a frame's detections, evicting the least-recently-used entry if
    /// the cache is full.  Inserting an already-resident key refreshes it.
    pub(crate) fn insert(
        &mut self,
        detector: DetectorSlot,
        frame: FrameId,
        detections: Arc<FrameDetections>,
    ) {
        self.tick += 1;
        let tick = self.tick;
        if self
            .map
            .insert((detector, frame), CacheEntry { detections, tick })
            .is_none()
            && self.map.len() > self.capacity
        {
            self.evict_one();
        }
        self.order.push_back(((detector, frame), tick));
        self.compact_if_bloated();
    }

    /// Drop stale touch-log entries once the log outgrows the live map.
    ///
    /// The lazy-deletion scheme only pops the log on evictions, so a fully
    /// warm, hit-dominated cache (the long-running-service shape) would
    /// otherwise grow the log by one entry per lookup forever.  Each retained
    /// entry's tick matches its key's current tick, so exactly one live log
    /// entry per resident key survives; the O(len) sweep is amortised by the
    /// 2× growth threshold.
    fn compact_if_bloated(&mut self) {
        if self.order.len() <= self.capacity.max(self.map.len()) * 2 {
            return;
        }
        let map = &self.map;
        self.order
            .retain(|(key, tick)| map.get(key).is_some_and(|entry| entry.tick == *tick));
    }

    /// Pop stale touch-log entries until one names the genuinely
    /// least-recently-used resident entry, and evict it.
    fn evict_one(&mut self) {
        while let Some((key, tick)) = self.order.pop_front() {
            let current = match self.map.get(&key) {
                Some(entry) => entry.tick,
                None => continue, // already evicted under a newer touch
            };
            if current != tick {
                continue; // touched again later; a fresher log entry exists
            }
            self.map.remove(&key);
            self.evictions += 1;
            return;
        }
        unreachable!("an over-capacity cache always has an evictable entry");
    }
}

impl std::fmt::Debug for DetectionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectionCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detections(frame: FrameId) -> Arc<FrameDetections> {
        // Only identity matters for these tests; an empty per-frame detection
        // list is enough.
        Arc::new(FrameDetections::empty(frame))
    }

    #[test]
    fn warm_hit_shares_the_entry_instead_of_deep_copying() {
        let mut cache = DetectionCache::new(4);
        let original = detections(9);
        cache.insert(0, 9, Arc::clone(&original));
        assert_eq!(Arc::strong_count(&original), 2, "cache holds one handle");
        // A hit hands back the same allocation; keeping it is a pointer bump.
        let held = Arc::clone(cache.get(0, 9).expect("warm hit"));
        assert!(
            Arc::ptr_eq(&held, &original),
            "hit must share the inserted allocation"
        );
        assert_eq!(
            Arc::strong_count(&original),
            3,
            "hit cloned the handle, not the detections"
        );
        drop(held);
        assert_eq!(Arc::strong_count(&original), 2);
    }

    #[test]
    fn hit_after_insert_and_miss_before() {
        let mut cache = DetectionCache::new(4);
        assert!(cache.get(0, 7).is_none());
        cache.insert(0, 7, detections(1));
        assert!(cache.get(0, 7).is_some());
        // Same frame under a different detector is a distinct key.
        assert!(cache.get(1, 7).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 2, 1));
    }

    #[test]
    fn capacity_is_enforced_with_lru_eviction() {
        let mut cache = DetectionCache::new(2);
        cache.insert(0, 1, detections(1));
        cache.insert(0, 2, detections(2));
        // Touch frame 1 so frame 2 is now least recently used.
        assert!(cache.get(0, 1).is_some());
        cache.insert(0, 3, detections(3));
        assert!(cache.get(0, 2).is_none(), "LRU entry should be evicted");
        assert!(cache.get(0, 1).is_some());
        assert!(cache.get(0, 3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.len, 2);
    }

    #[test]
    fn reinserting_a_resident_key_refreshes_without_eviction() {
        let mut cache = DetectionCache::new(2);
        cache.insert(0, 1, detections(1));
        cache.insert(0, 2, detections(2));
        cache.insert(0, 1, detections(1));
        assert_eq!(cache.stats().evictions, 0);
        // Frame 2 is now the LRU entry.
        cache.insert(0, 3, detections(3));
        assert!(cache.get(0, 2).is_none());
        assert!(cache.get(0, 1).is_some());
    }

    #[test]
    fn touch_log_stays_bounded_under_hit_dominated_load() {
        // A fully warm cache never evicts, so without compaction the touch
        // log would grow by one entry per hit forever.
        let mut cache = DetectionCache::new(8);
        for frame in 0..8u64 {
            cache.insert(0, frame, detections(frame));
        }
        for round in 0..10_000u64 {
            assert!(cache.get(0, round % 8).is_some());
        }
        assert!(
            cache.order.len() <= cache.capacity * 2 + 1,
            "touch log grew to {} entries",
            cache.order.len()
        );
        assert_eq!(cache.stats().hits, 10_000);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = DetectionCache::new(0);
    }
}
