//! The complete Algorithm 1 loop: sampler + detector + discriminator.
//!
//! [`run_query`] wires an [`ExSample`] sampler to an object [`Detector`] and a
//! [`Discriminator`] over a concrete [`Chunking`] of a video repository, and
//! runs the paper's Algorithm 1 until a stopping condition is met.  It is a
//! thin wrapper over [`QueryEngine`]: one query, batch size 1, the caller's
//! RNG threaded through as the query's stream.  A batch-1 engine stage is
//! exactly one pick → detect → record iteration of the paper's loop, so this
//! wrapper reproduces the historical hand-written loop pick for pick (the
//! determinism test-suite pins that equivalence down against a faithful
//! replica of the legacy loop).

use crate::engine::{QueryEngine, QuerySpec};
use crate::error::EngineError;
use crate::policy::ExSamplePolicy;
use exsample_core::ExSample;
use exsample_detect::{Detector, InstanceId};
use exsample_track::Discriminator;
use exsample_video::Chunking;
use rand::Rng;

pub use crate::engine::StopReason;

/// The outcome of one query run.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Number of frames processed through the detector.
    pub frames_processed: u64,
    /// Number of distinct objects found (as judged by the discriminator).
    pub distinct_found: usize,
    /// The ground-truth instances among the found objects.
    pub found_instances: Vec<InstanceId>,
    /// Number of frames sampled from each chunk.
    pub samples_per_chunk: Vec<u64>,
    /// Why the run stopped.
    pub stop_reason: StopReason,
}

/// Run Algorithm 1.
///
/// * `sampler` — the ExSample state machine (already configured with the chunk
///   lengths of `chunking`).
/// * `chunking` — maps the sampler's (chunk, offset) picks to global frame ids.
/// * `detector` / `discriminator` — the frame-processing pipeline.
/// * `result_limit` — stop after this many distinct objects.
/// * `frame_budget` — optionally stop after this many detector invocations.
///
/// # Errors
/// Returns [`EngineError::ChunkCountMismatch`] if the sampler's chunk count
/// does not match `chunking` (historically a panic).
pub fn run_query<D, X, R>(
    sampler: &mut ExSample,
    chunking: &Chunking,
    detector: &D,
    discriminator: &mut X,
    result_limit: usize,
    frame_budget: Option<u64>,
    rng: &mut R,
) -> Result<QueryOutcome, EngineError>
where
    D: Detector,
    X: Discriminator,
    R: Rng,
{
    let (frames_processed, stop_reason) = {
        let policy = ExSamplePolicy::from_sampler(&mut *sampler, chunking)?;
        let mut spec = QuerySpec::new("run-query", Box::new(policy), detector)
            .discriminator(Box::new(&mut *discriminator))
            .rng(Box::new(&mut *rng))
            .result_limit(result_limit)
            .batch(1);
        if let Some(budget) = frame_budget {
            spec = spec.frame_budget(budget);
        }
        let mut engine = QueryEngine::new();
        engine.push(spec)?;
        let report = engine.run()?;
        let q = &report.outcomes[0];
        (
            q.frames_processed,
            q.stop_reason.expect("run() leaves every query stopped"),
        )
    };

    // The engine's borrows have been released; read the final state off the
    // caller's own sampler and discriminator, exactly as the legacy loop did.
    Ok(QueryOutcome {
        frames_processed,
        distinct_found: discriminator.distinct_count(),
        found_instances: discriminator.found_instances(),
        samples_per_chunk: sampler.stats().all().iter().map(|s| s.samples()).collect(),
        stop_reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_core::ExSampleConfig;
    use exsample_detect::{GroundTruth, ObjectClass, ObjectInstance, PerfectDetector};
    use exsample_track::OracleDiscriminator;
    use exsample_video::{Chunking, ChunkingPolicy, VideoRepository};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// A repository of 40_000 frames, 8 chunks, with all ten "car" instances packed
    /// into the final chunk.
    fn skewed_setup() -> (Chunking, Arc<GroundTruth>) {
        let repo = VideoRepository::single_clip(40_000);
        let chunking = Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks: 8 });
        let mut instances = Vec::new();
        for i in 0..10u64 {
            let start = 35_000 + i * 450;
            instances.push(ObjectInstance::simple(i, "car", start, start + 300));
        }
        let truth = Arc::new(GroundTruth::from_instances(40_000, instances));
        (chunking, truth)
    }

    #[test]
    fn finds_requested_results_and_stops() {
        let (chunking, truth) = skewed_setup();
        let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));
        let mut discriminator = OracleDiscriminator::new();
        let mut sampler = ExSample::new(ExSampleConfig::default(), &chunking.chunk_lengths());
        let mut rng = StdRng::seed_from_u64(7);

        let outcome = run_query(
            &mut sampler,
            &chunking,
            &detector,
            &mut discriminator,
            5,
            None,
            &mut rng,
        )
        .unwrap();
        assert_eq!(outcome.stop_reason, StopReason::ResultLimitReached);
        assert!(outcome.distinct_found >= 5);
        assert_eq!(outcome.found_instances.len(), outcome.distinct_found);
        assert_eq!(
            outcome.samples_per_chunk.iter().sum::<u64>(),
            outcome.frames_processed
        );
    }

    #[test]
    fn concentrates_samples_on_the_chunk_with_results() {
        let (chunking, truth) = skewed_setup();
        let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));
        let mut discriminator = OracleDiscriminator::new();
        let mut sampler = ExSample::new(ExSampleConfig::default(), &chunking.chunk_lengths());
        let mut rng = StdRng::seed_from_u64(11);

        let outcome = run_query(
            &mut sampler,
            &chunking,
            &detector,
            &mut discriminator,
            10,
            Some(3_000),
            &mut rng,
        )
        .unwrap();
        // All instances live in the last chunk; it should dominate the allocation
        // once a couple of results are found.
        let last = *outcome.samples_per_chunk.last().unwrap() as f64;
        let total = outcome.frames_processed as f64;
        assert!(
            last / total > 0.3,
            "expected concentration on the last chunk: {:?}",
            outcome.samples_per_chunk
        );
    }

    #[test]
    fn frame_budget_is_respected() {
        let (chunking, truth) = skewed_setup();
        let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));
        let mut discriminator = OracleDiscriminator::new();
        let mut sampler = ExSample::new(ExSampleConfig::default(), &chunking.chunk_lengths());
        let mut rng = StdRng::seed_from_u64(13);

        let outcome = run_query(
            &mut sampler,
            &chunking,
            &detector,
            &mut discriminator,
            1_000_000,
            Some(50),
            &mut rng,
        )
        .unwrap();
        assert_eq!(outcome.stop_reason, StopReason::FrameBudgetExhausted);
        assert_eq!(outcome.frames_processed, 50);
    }

    #[test]
    fn repository_exhaustion_terminates_the_loop() {
        // A tiny repository with no objects at all: the loop must stop once every
        // frame has been sampled.
        let repo = VideoRepository::single_clip(64);
        let chunking = Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks: 4 });
        let truth = Arc::new(GroundTruth::new(64));
        let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));
        let mut discriminator = OracleDiscriminator::new();
        let mut sampler = ExSample::new(ExSampleConfig::default(), &chunking.chunk_lengths());
        let mut rng = StdRng::seed_from_u64(17);

        let outcome = run_query(
            &mut sampler,
            &chunking,
            &detector,
            &mut discriminator,
            10,
            None,
            &mut rng,
        )
        .unwrap();
        assert_eq!(outcome.stop_reason, StopReason::RepositoryExhausted);
        assert_eq!(outcome.frames_processed, 64);
        assert_eq!(outcome.distinct_found, 0);
    }

    #[test]
    fn mismatched_chunking_is_a_typed_error_not_a_panic() {
        let (chunking, truth) = skewed_setup();
        let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));
        let mut discriminator = OracleDiscriminator::new();
        let mut sampler = ExSample::new(ExSampleConfig::default(), &[10, 10]);
        let mut rng = StdRng::seed_from_u64(1);
        let err = run_query(
            &mut sampler,
            &chunking,
            &detector,
            &mut discriminator,
            1,
            None,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::ChunkCountMismatch(_)));
        assert!(err.to_string().contains("disagree on the number of chunks"));
    }
}
