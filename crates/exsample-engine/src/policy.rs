//! The [`SamplingPolicy`] trait and its adapters.
//!
//! Every sampling strategy in the workspace — ExSample itself, the
//! whole-repository `random`/`random+` samplers, and the `SamplingMethod`
//! baselines (sequential scan, proxy ordering) — speaks this one object-safe
//! interface to the engine: *fill a batch of global frame ids* /
//! *hear back what the discriminator said about a frame* / *report how many
//! frames are left*.  The engine never learns which strategy it is driving,
//! which is what lets one [`crate::QueryEngine`] multiplex heterogeneous
//! queries over a shared repository.
//!
//! Three adapters cover the existing implementations:
//!
//! * [`ExSamplePolicy`] — wraps [`ExSample`] over a concrete [`Chunking`],
//!   translating `(chunk, offset)` picks into global frame ids and routing
//!   feedback back to the sampled chunk.  Batch 1 takes the exact single-pick
//!   hot path, so an engine running batch 1 consumes the same RNG stream as
//!   the legacy per-frame loop, pick for pick.
//! * [`FrameSamplerPolicy`] — lifts any within-range [`FrameSampler`]
//!   (uniform without replacement, `random+`) to a whole-repository policy.
//! * [`MethodPolicy`] — bridges the [`SamplingMethod`] baselines (proxy,
//!   sequential) so they run unmodified inside the engine.

use crate::error::{ChunkCountMismatch, EngineError};
use exsample_baselines::SamplingMethod;
use exsample_core::{ExSample, ExSampleConfig, FramePick, SelectionTelemetry};
use exsample_track::MatchOutcome;
use exsample_video::{Chunking, FrameId, FrameSampler, RandomPlusSampler, UniformSampler};
use rand::RngCore;
use std::borrow::BorrowMut;

/// An object-safe sampling strategy, as seen by the execution engine.
///
/// Implementations hand out each frame of their range at most once (the
/// without-replacement contract every underlying sampler already obeys), and
/// must tolerate [`SamplingPolicy::record`] calls for any frame they produced,
/// in production order.
pub trait SamplingPolicy {
    /// Short human-readable name ("exsample", "random", …), used in reports.
    fn name(&self) -> &'static str;

    /// Frames that must be scanned (decoded + proxy-scored) before the policy
    /// can produce its first pick.  Non-zero only for proxy-style policies.
    fn upfront_scan_frames(&self) -> u64 {
        0
    }

    /// Clear `picks` and fill it with up to `batch` global frame ids to process
    /// in one engine stage.  Producing fewer than `batch` picks signals that
    /// the repository is (about to be) exhausted; producing none ends the
    /// query.
    fn next_batch_into(&mut self, rng: &mut dyn RngCore, batch: usize, picks: &mut Vec<FrameId>);

    /// Feed back the discriminator outcome for a frame previously produced by
    /// [`SamplingPolicy::next_batch_into`].
    fn record(&mut self, frame: FrameId, outcome: &MatchOutcome);

    /// Number of frames the policy can still produce, if it knows it.
    fn remaining(&self) -> Option<u64>;

    /// Chunk-selection telemetry (class-max vs per-chunk picks, dedup
    /// savings), for policies that track it.  `None` for policies without a
    /// chunk-selection step; the default.
    fn selection_telemetry(&self) -> Option<SelectionTelemetry> {
        None
    }
}

/// ExSample adapted to the engine interface.
///
/// Generic over the sampler's ownership so the engine can either own the
/// algorithm state (`ExSamplePolicy<ExSample>`, the common case) or borrow a
/// caller-owned sampler for one run (`ExSamplePolicy<&mut ExSample>`, which is
/// how the legacy `run_query` wrapper lets callers inspect chunk statistics
/// afterwards).
#[derive(Debug)]
pub struct ExSamplePolicy<S = ExSample>
where
    S: BorrowMut<ExSample>,
{
    sampler: S,
    chunk_starts: Vec<u64>,
    chunk_ends: Vec<u64>,
    scratch: Vec<FramePick>,
}

impl ExSamplePolicy<ExSample> {
    /// Build a fresh sampler for `chunking` with the given configuration.
    pub fn new(config: ExSampleConfig, chunking: &Chunking) -> Self {
        let sampler = ExSample::new(config, &chunking.chunk_lengths());
        ExSamplePolicy::from_sampler(sampler, chunking)
            .expect("sampler was built from this chunking")
    }
}

impl<S: BorrowMut<ExSample>> ExSamplePolicy<S> {
    /// Wrap an already-configured sampler (owned or borrowed).
    ///
    /// # Errors
    /// Returns [`EngineError::ChunkCountMismatch`] if the sampler's chunk count
    /// does not match `chunking`.
    pub fn from_sampler(sampler: S, chunking: &Chunking) -> Result<Self, EngineError> {
        let chunk_count = sampler.borrow().chunk_count();
        if chunk_count != chunking.len() {
            return Err(ChunkCountMismatch {
                sampler_chunks: chunk_count,
                chunking_chunks: chunking.len(),
            }
            .into());
        }
        Ok(ExSamplePolicy {
            sampler,
            chunk_starts: chunking.chunks().iter().map(|c| c.start()).collect(),
            chunk_ends: chunking.chunks().iter().map(|c| c.end()).collect(),
            scratch: Vec::new(),
        })
    }

    /// The wrapped sampler (e.g. to inspect per-chunk statistics).
    pub fn sampler(&self) -> &ExSample {
        self.sampler.borrow()
    }

    /// Which chunk a global frame id belongs to.
    ///
    /// # Panics
    /// Panics if `frame` lies outside the chunking, which can only happen when
    /// feedback is routed to the wrong policy.
    fn chunk_of(&self, frame: FrameId) -> usize {
        match self.chunk_ends.partition_point(|&end| end <= frame) {
            idx if idx < self.chunk_starts.len() && frame >= self.chunk_starts[idx] => idx,
            _ => panic!("frame {frame} is not covered by the chunking"),
        }
    }
}

impl<S: BorrowMut<ExSample>> SamplingPolicy for ExSamplePolicy<S> {
    fn name(&self) -> &'static str {
        "exsample"
    }

    fn next_batch_into(&mut self, rng: &mut dyn RngCore, batch: usize, picks: &mut Vec<FrameId>) {
        picks.clear();
        let sampler = self.sampler.borrow_mut();
        if batch == 1 {
            // The direct single-pick path: identical RNG consumption to the
            // legacy per-frame loop, which is what makes a batch-1 engine run
            // reproduce `run_query` pick for pick.
            if let Some(pick) = sampler.next_frame(rng) {
                picks.push(self.chunk_starts[pick.chunk] + pick.offset);
            }
            return;
        }
        sampler.next_batch_into(rng, batch, &mut self.scratch);
        picks.extend(
            self.scratch
                .iter()
                .map(|p| self.chunk_starts[p.chunk] + p.offset),
        );
    }

    fn record(&mut self, frame: FrameId, outcome: &MatchOutcome) {
        let chunk = self.chunk_of(frame);
        self.sampler.borrow_mut().record(chunk, outcome.n1_delta());
    }

    fn remaining(&self) -> Option<u64> {
        Some(self.sampler.borrow().remaining_frames())
    }

    fn selection_telemetry(&self) -> Option<SelectionTelemetry> {
        Some(self.sampler.borrow().selection_telemetry())
    }
}

/// A whole-repository [`FrameSampler`] as a sampling policy.
///
/// The global `random` and `random+` baselines are exactly the within-chunk
/// samplers applied to the repository as a single range, so this adapter (plus
/// the shared without-replacement bookkeeping inside `exsample-video`) replaces
/// the per-baseline wrapper types.
#[derive(Debug, Clone)]
pub struct FrameSamplerPolicy<S: FrameSampler> {
    name: &'static str,
    inner: S,
}

impl FrameSamplerPolicy<UniformSampler> {
    /// Uniform random sampling without replacement over `0..total_frames`.
    pub fn uniform(total_frames: u64) -> Self {
        FrameSamplerPolicy {
            name: "random",
            inner: UniformSampler::new(total_frames),
        }
    }
}

impl FrameSamplerPolicy<RandomPlusSampler> {
    /// `random+` hierarchical sampling over `0..total_frames`.
    pub fn random_plus(total_frames: u64) -> Self {
        FrameSamplerPolicy {
            name: "random+",
            inner: RandomPlusSampler::new(total_frames),
        }
    }
}

impl<S: FrameSampler> FrameSamplerPolicy<S> {
    /// Wrap an arbitrary frame sampler under a display name.
    pub fn with_name(name: &'static str, inner: S) -> Self {
        FrameSamplerPolicy { name, inner }
    }

    /// The wrapped sampler.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

/// Batching shim for pick-at-a-time sources: clear `picks`, then draw up to
/// `batch` frames, stopping early when the source runs dry.
fn fill_batch(
    rng: &mut dyn RngCore,
    batch: usize,
    picks: &mut Vec<FrameId>,
    mut next: impl FnMut(&mut dyn RngCore) -> Option<FrameId>,
) {
    picks.clear();
    for _ in 0..batch {
        let Some(frame) = next(rng) else {
            break;
        };
        picks.push(frame);
    }
}

impl<S: FrameSampler> SamplingPolicy for FrameSamplerPolicy<S> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn next_batch_into(&mut self, rng: &mut dyn RngCore, batch: usize, picks: &mut Vec<FrameId>) {
        fill_batch(rng, batch, picks, |rng| self.inner.next_frame(rng))
    }

    fn record(&mut self, _frame: FrameId, _outcome: &MatchOutcome) {}

    fn remaining(&self) -> Option<u64> {
        Some(self.inner.remaining())
    }
}

/// Any [`SamplingMethod`] baseline as a sampling policy.
///
/// Methods have no native batching, so a batch is `batch` sequential picks —
/// correct for the non-adaptive baselines (proxy order, sequential scan,
/// whole-repository random), whose pick distribution does not depend on
/// feedback timing.
#[derive(Debug, Clone)]
pub struct MethodPolicy<M: SamplingMethod> {
    inner: M,
}

impl<M: SamplingMethod> MethodPolicy<M> {
    /// Wrap a sampling method (owned, or `&mut dyn SamplingMethod`).
    pub fn new(inner: M) -> Self {
        MethodPolicy { inner }
    }

    /// The wrapped method.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: SamplingMethod> SamplingPolicy for MethodPolicy<M> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn upfront_scan_frames(&self) -> u64 {
        self.inner.upfront_scan_frames()
    }

    fn next_batch_into(&mut self, rng: &mut dyn RngCore, batch: usize, picks: &mut Vec<FrameId>) {
        fill_batch(rng, batch, picks, |rng| self.inner.next_frame(rng))
    }

    fn record(&mut self, frame: FrameId, outcome: &MatchOutcome) {
        self.inner.record(frame, outcome);
    }

    fn remaining(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_baselines::SequentialScan;
    use exsample_video::{ChunkingPolicy, VideoRepository};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn chunking(frames: u64, chunks: u32) -> Chunking {
        let repo = VideoRepository::single_clip(frames);
        Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks })
    }

    #[test]
    fn exsample_policy_batch_one_matches_raw_sampler_stream() {
        let chunking = chunking(10_000, 8);
        let mut policy = ExSamplePolicy::new(ExSampleConfig::default(), &chunking);
        let mut raw = ExSample::new(ExSampleConfig::default(), &chunking.chunk_lengths());
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let mut picks = Vec::new();
        for _ in 0..500 {
            policy.next_batch_into(&mut rng_a, 1, &mut picks);
            let pick = raw.next_frame(&mut rng_b).unwrap();
            let frame = chunking.chunks()[pick.chunk].start() + pick.offset;
            assert_eq!(picks, vec![frame]);
            policy.record(frame, &MatchOutcome::default());
            raw.record(pick.chunk, 0);
        }
    }

    #[test]
    fn exsample_policy_feedback_reaches_the_right_chunk() {
        let chunking = chunking(1_000, 4);
        let mut policy = ExSamplePolicy::new(ExSampleConfig::default(), &chunking);
        // Frame 900 belongs to chunk 3.
        policy.record(
            900,
            &MatchOutcome {
                new: Vec::new(),
                matched_once: Vec::new(),
                matched_more: Vec::new(),
            },
        );
        assert_eq!(policy.sampler().stats().chunk(3).samples(), 1);
    }

    #[test]
    fn exsample_policy_rejects_mismatched_chunking() {
        let chunking = chunking(1_000, 4);
        let sampler = ExSample::new(ExSampleConfig::default(), &[10, 10]);
        let err = ExSamplePolicy::from_sampler(sampler, &chunking).unwrap_err();
        assert!(matches!(err, EngineError::ChunkCountMismatch(_)));
    }

    #[test]
    fn exsample_policy_batched_picks_are_distinct_and_exhaustive() {
        let chunking = chunking(64, 4);
        let mut policy = ExSamplePolicy::new(ExSampleConfig::default(), &chunking);
        let mut rng = StdRng::seed_from_u64(7);
        let mut picks = Vec::new();
        let mut seen = HashSet::new();
        loop {
            policy.next_batch_into(&mut rng, 10, &mut picks);
            if picks.is_empty() {
                break;
            }
            for &frame in &picks {
                assert!(frame < 64);
                assert!(seen.insert(frame), "frame {frame} produced twice");
            }
        }
        assert_eq!(seen.len(), 64);
        assert_eq!(policy.remaining(), Some(0));
    }

    #[test]
    fn frame_sampler_policy_covers_range_without_repeats() {
        let policies: [Box<dyn SamplingPolicy>; 2] = [
            Box::new(FrameSamplerPolicy::uniform(300)),
            Box::new(FrameSamplerPolicy::random_plus(300)),
        ];
        for mut policy in policies {
            let mut rng = StdRng::seed_from_u64(9);
            let mut picks = Vec::new();
            let mut seen = HashSet::new();
            loop {
                policy.next_batch_into(&mut rng, 32, &mut picks);
                if picks.is_empty() {
                    break;
                }
                for &f in &picks {
                    assert!(seen.insert(f));
                }
            }
            assert_eq!(seen.len(), 300, "policy {}", policy.name());
            assert_eq!(policy.remaining(), Some(0));
        }
        assert_eq!(FrameSamplerPolicy::uniform(10).name(), "random");
        assert_eq!(FrameSamplerPolicy::random_plus(10).name(), "random+");
    }

    #[test]
    fn method_policy_delegates_name_cost_and_order() {
        let mut policy = MethodPolicy::new(SequentialScan::with_stride(10, 3));
        assert_eq!(policy.name(), "sequential");
        assert_eq!(policy.upfront_scan_frames(), 0);
        assert_eq!(policy.remaining(), None);
        let mut rng = StdRng::seed_from_u64(11);
        let mut picks = Vec::new();
        policy.next_batch_into(&mut rng, 8, &mut picks);
        assert_eq!(picks, vec![0, 3, 6, 9]);
    }
}
