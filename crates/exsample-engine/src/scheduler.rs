//! Pluggable per-stage batch allocation.
//!
//! Historically the engine hard-coded "every live query contributes one batch
//! per stage".  That rule is now the default implementation of the
//! [`StageScheduler`] trait: before each stage the engine describes every
//! query's load ([`QueryLoad`]) and asks the scheduler how many frames each
//! live query may pick this stage.  Two schedulers ship:
//!
//! * [`RoundRobin`] — every live query gets its configured batch size, exactly
//!   the pre-scheduler behaviour (and therefore exactly the same per-query
//!   pick sequences — the determinism suite pins this down).
//! * [`BudgetProportional`] — the stage's total pick capacity (the sum of the
//!   live queries' batch sizes) is divided in proportion to each query's
//!   remaining frame budget, so queries with a lot of work left get bigger
//!   batches and nearly-finished queries stop hogging stage bandwidth.
//!
//! Contract: schedulers are deterministic functions of `(stage, loads)`; the
//! engine clamps every live query's allocation to at least one frame (a live
//! query always makes progress, so no scheduler can livelock a run) and to the
//! query's remaining frame budget (so no scheduler can overrun a budget).

/// One query's scheduling inputs for a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryLoad {
    /// Whether the query still wants frames (not stopped before this stage).
    /// Allocations for non-live queries are ignored.
    pub live: bool,
    /// The query's configured per-stage batch size.
    pub batch: usize,
    /// Frames left under the query's budget, or `None` if unbudgeted.
    pub budget_left: Option<u64>,
}

/// An object-safe per-stage batch allocator.
pub trait StageScheduler {
    /// Short human-readable name ("round-robin", "budget-proportional").
    fn name(&self) -> &'static str;

    /// Clear `allocation` and push one entry per query in `loads` order: the
    /// number of frames that query may pick this stage.  Entries for non-live
    /// queries are ignored; live entries are clamped by the engine to
    /// `1..=budget_left`.
    fn allocate(&mut self, stage: u64, loads: &[QueryLoad], allocation: &mut Vec<usize>);
}

/// Today's default: every live query contributes one full batch per stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl StageScheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn allocate(&mut self, _stage: u64, loads: &[QueryLoad], allocation: &mut Vec<usize>) {
        allocation.clear();
        allocation.extend(loads.iter().map(|load| load.batch));
    }
}

/// Stage allocation weighted by remaining per-query frame budget.
///
/// The stage's capacity is `Σ batch` over live queries; each live query
/// receives `capacity * budget_left / Σ budget_left` frames (integer floor,
/// minimum one), and any overage the 1-frame minimums introduce is clawed
/// back from the largest allocations, so the total never exceeds the
/// capacity unless the minimums alone do (more live queries than capacity).
/// Unbudgeted queries weigh in at the largest live budget, so they are
/// treated as "lots of work left" rather than starved or dominant.
#[derive(Debug, Clone, Copy, Default)]
pub struct BudgetProportional;

impl StageScheduler for BudgetProportional {
    fn name(&self) -> &'static str {
        "budget-proportional"
    }

    fn allocate(&mut self, _stage: u64, loads: &[QueryLoad], allocation: &mut Vec<usize>) {
        allocation.clear();
        let capacity: u64 = loads
            .iter()
            .filter(|l| l.live)
            .map(|l| l.batch as u64)
            .sum();
        let max_budget = loads
            .iter()
            .filter(|l| l.live)
            .filter_map(|l| l.budget_left)
            .max()
            .unwrap_or(1)
            .max(1);
        let weight = |load: &QueryLoad| load.budget_left.unwrap_or(max_budget).max(1);
        let total_weight: u128 = loads
            .iter()
            .filter(|l| l.live)
            .map(|l| u128::from(weight(l)))
            .sum();
        for load in loads {
            if !load.live || total_weight == 0 {
                allocation.push(load.batch);
                continue;
            }
            let share = (u128::from(capacity) * u128::from(weight(load)) / total_weight) as usize;
            allocation.push(share.max(1));
        }
        // Bumping zero shares to the 1-frame minimum can push the total past
        // the stage capacity; claw the overage back from the largest
        // allocations (deterministically: lowest index wins ties) so the
        // stage never exceeds `capacity` unless the minimums alone do.
        let mut total: u64 = loads
            .iter()
            .zip(allocation.iter())
            .filter(|(l, _)| l.live)
            .map(|(_, &a)| a as u64)
            .sum();
        while total > capacity {
            let mut largest: Option<usize> = None;
            for (i, load) in loads.iter().enumerate() {
                if load.live
                    && allocation[i] > 1
                    && largest.is_none_or(|j| allocation[i] > allocation[j])
                {
                    largest = Some(i);
                }
            }
            let Some(index) = largest else {
                break; // every live query is at the 1-frame minimum
            };
            allocation[index] -= 1;
            total -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(live: bool, batch: usize, budget_left: Option<u64>) -> QueryLoad {
        QueryLoad {
            live,
            batch,
            budget_left,
        }
    }

    #[test]
    fn round_robin_hands_every_query_its_batch() {
        let mut scheduler = RoundRobin;
        let mut allocation = Vec::new();
        let loads = [
            load(true, 16, Some(1_000)),
            load(false, 8, None),
            load(true, 4, None),
        ];
        scheduler.allocate(0, &loads, &mut allocation);
        assert_eq!(allocation, vec![16, 8, 4]);
        assert_eq!(scheduler.name(), "round-robin");
    }

    #[test]
    fn budget_proportional_weights_by_remaining_budget() {
        let mut scheduler = BudgetProportional;
        let mut allocation = Vec::new();
        // Capacity 32; budgets 900 vs 100 → shares 28 vs 3 (floors of 28.8/3.2).
        let loads = [load(true, 16, Some(900)), load(true, 16, Some(100))];
        scheduler.allocate(3, &loads, &mut allocation);
        assert_eq!(allocation, vec![28, 3]);
        let total: usize = allocation.iter().sum();
        assert!(total <= 32);
        assert_eq!(scheduler.name(), "budget-proportional");
    }

    #[test]
    fn budget_proportional_never_starves_a_live_query() {
        let mut scheduler = BudgetProportional;
        let mut allocation = Vec::new();
        let loads = [load(true, 16, Some(1_000_000)), load(true, 16, Some(1))];
        scheduler.allocate(0, &loads, &mut allocation);
        assert!(allocation[1] >= 1);
        assert!(allocation[0] > allocation[1]);
    }

    #[test]
    fn budget_proportional_treats_unbudgeted_queries_as_heaviest() {
        let mut scheduler = BudgetProportional;
        let mut allocation = Vec::new();
        let loads = [load(true, 8, None), load(true, 8, Some(100))];
        scheduler.allocate(0, &loads, &mut allocation);
        // The unbudgeted query weighs as much as the largest budget (100), so
        // the two split the capacity evenly.
        assert_eq!(allocation, vec![8, 8]);
    }

    #[test]
    fn budget_proportional_never_exceeds_stage_capacity() {
        let mut scheduler = BudgetProportional;
        let mut allocation = Vec::new();
        // Capacity 6; the heavy query floors to 5 and the two 1-frame-budget
        // queries round up to 1 each (total 7) — the clawback trims the
        // largest allocation back so the stage stays within capacity.
        let loads = [
            load(true, 2, Some(1_000_000)),
            load(true, 2, Some(1)),
            load(true, 2, Some(1)),
        ];
        scheduler.allocate(0, &loads, &mut allocation);
        assert_eq!(allocation, vec![4, 1, 1]);
        // With more live queries than capacity, the 1-frame minimum wins.
        let many: Vec<QueryLoad> = (0..5).map(|_| load(true, 1, Some(1))).collect();
        scheduler.allocate(0, &many, &mut allocation);
        assert_eq!(allocation, vec![1; 5]);
    }

    #[test]
    fn budget_proportional_with_only_dead_queries_passes_batches_through() {
        let mut scheduler = BudgetProportional;
        let mut allocation = Vec::new();
        let loads = [load(false, 8, None), load(false, 4, Some(10))];
        scheduler.allocate(0, &loads, &mut allocation);
        assert_eq!(allocation, vec![8, 4]);
    }
}
