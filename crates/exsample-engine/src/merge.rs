//! Combining per-shard reports into a global report.
//!
//! Each shard worker accumulates what *it* paid and saw: frames run through
//! its detectors, physical `detect_batch` invocations, per-detector
//! invocation tallies, and per-query frame/hit counts for the frames it
//! owned.  [`merge_reports`] folds those [`ShardReport`]s into a
//! [`ShardedReport`] whose embedded [`EngineReport`] is **bitwise-identical
//! to an unsharded run** of the same queries (same per-query RNG streams),
//! for any shard count and any shard interleaving:
//!
//! * per-query `frames_processed` is recomputed as the sum of the per-shard
//!   tallies and cross-checked against the coordinator's own count — a
//!   mismatch (a frame observed but never tallied to a shard, or vice versa)
//!   is a typed [`MergeError`], not a silent wrong number;
//! * hit counts are likewise summed and cross-checked against the
//!   discriminators' global `true_found`;
//! * `detector_frames` is the sum of the shards' detected frames (frames
//!   never cross shards, so shard-local deduplication adds up to exactly the
//!   global deduplicated count);
//! * `detector_calls` stays *logical* (one per detector group per stage —
//!   what an unsharded engine would issue), while the physical per-shard
//!   invocation count, which grows with the shard count because one logical
//!   group's frames split across shards, is reported separately as
//!   [`ShardedReport::physical_detector_calls`] — that difference is the
//!   merge overhead the sharded benchmark tracks;
//! * fault telemetry (retries, exhausted frames, backoff cost, per-query
//!   dropped frames) is summed over the shards in shard order and
//!   cross-checked against the coordinator's totals the same way, so a
//!   degraded run's report is exactly as deterministic as a clean one;
//! * cache telemetry (hits, misses, evictions, admission rejects) is likewise
//!   summed over the shards' run-cumulative tallies and cross-checked against
//!   the coordinator's fold — the striped cache's determinism contract makes
//!   those numbers bitwise-reproducible, so a disagreement is a bug, not
//!   noise.

use crate::cache::CacheActivity;
use crate::engine::EngineReport;
use std::fmt;

/// Physical batch-size statistics: how many `detect_batch` invocations were
/// issued, how many frames they carried in total, and the smallest/largest
/// single batch.
///
/// These are *physical* tallies — they describe the invocation shapes a
/// backend actually saw, so they vary with the shard layout and with the
/// engine's batching strategy (per-shard lanes vs cross-shard aggregation).
/// That is the point: paired with a per-call + per-frame cost model
/// (`exsample_detect::BatchCostModel`), they make a batching strategy's cost
/// comparable in reports without ever being part of the logical determinism
/// contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Physical invocations recorded.
    pub count: u64,
    /// Frames submitted across all recorded invocations.
    pub frames: u64,
    /// Smallest single batch recorded (0 when nothing was recorded).
    pub min: u64,
    /// Largest single batch recorded (0 when nothing was recorded).
    pub max: u64,
}

impl BatchStats {
    /// Record one physical invocation carrying `frames` frames.
    pub fn record(&mut self, frames: u64) {
        self.record_repeat(frames, 1);
    }

    /// Record `count` physical invocations of `frames` frames each (e.g. a
    /// burst of per-frame recovery calls).
    pub fn record_repeat(&mut self, frames: u64, count: u64) {
        if count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = frames;
            self.max = frames;
        } else {
            self.min = self.min.min(frames);
            self.max = self.max.max(frames);
        }
        self.count += count;
        self.frames += frames * count;
    }

    /// Fold another tally into this one.
    pub fn merge(&mut self, other: &BatchStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.frames += other.frames;
    }

    /// Mean frames per invocation (0.0 when nothing was recorded).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.frames as f64 / self.count as f64
        }
    }
}

impl fmt::Display for BatchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} batches ({} frames, min {}, mean {:.1}, max {})",
            self.count,
            self.frames,
            self.min,
            self.mean(),
            self.max
        )
    }
}

/// One query's tallies on one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardQueryTally {
    /// Frames of this query that this shard owned (and detected or served
    /// from cache).
    pub frames: u64,
    /// Ground-truth instances first found on this shard's frames.
    pub hits: u64,
    /// Picked frames of this query that this shard dropped after their
    /// detection failed terminally (only under
    /// [`crate::FailureMode::DropFrames`] or
    /// [`crate::FailureMode::Quarantine`]).
    pub dropped: u64,
}

/// One detector's invocation tallies on one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorInvocations {
    /// Engine-assigned detector slot (first-seen order; stable within a run).
    pub detector: u32,
    /// The detector's object class, for display.
    pub class: String,
    /// Frames successfully run through this detector on this shard.
    pub frames: u64,
    /// Physical detect invocations issued on this shard (batch probes plus
    /// per-frame recovery attempts).
    pub calls: u64,
    /// Frames whose detection by this detector failed terminally on this
    /// shard (retry budget exhausted or permanent error).
    pub failures: u64,
}

/// Everything one shard worker accumulated over a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// The shard's index.
    pub shard: u32,
    /// Frames run through detectors on this shard (post-coalescing,
    /// post-cache).
    pub detector_frames: u64,
    /// Physical `detect_batch` invocations issued by this shard.
    pub detector_calls: u64,
    /// Detect attempts this shard retried after a transient failure.
    pub retries: u64,
    /// Deterministic backoff cost units this shard charged for its retries.
    pub backoff_cost: u64,
    /// Frames whose detection failed terminally on this shard.
    pub failed_frames: u64,
    /// Batch-size statistics over the physical invocations attributed to this
    /// shard (`batches.count == detector_calls` by construction; checked by
    /// the merge).  Under cross-shard aggregation a batch attributed here may
    /// carry other shards' frames, so `batches.frames` is *not* constrained
    /// to this shard's `detector_frames`.
    pub batches: BatchStats,
    /// Run-cumulative cache activity attributed to this shard: probes its
    /// worker answered (hits/misses) and the evictions/admission-rejects its
    /// commit intents caused during the serial arbitration.
    pub cache: CacheActivity,
    /// Per-query tallies, indexed by query registration order.
    pub per_query: Vec<ShardQueryTally>,
    /// Per-detector invocation tallies, ordered by detector slot.
    pub per_detector: Vec<DetectorInvocations>,
}

/// An inconsistency between the per-shard tallies and the coordinator's
/// global state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// A shard report covers a different number of queries than the global
    /// report.
    QueryCountMismatch {
        /// The offending shard.
        shard: u32,
        /// Queries in the shard report.
        shard_queries: usize,
        /// Queries in the global report.
        report_queries: usize,
    },
    /// The per-shard frame tallies of a query do not add up to its global
    /// count.
    FrameMismatch {
        /// Query registration index.
        query: usize,
        /// Sum of the per-shard tallies.
        merged: u64,
        /// The coordinator's count.
        reported: u64,
    },
    /// The per-shard hit tallies of a query do not add up to its global
    /// count.
    HitMismatch {
        /// Query registration index.
        query: usize,
        /// Sum of the per-shard tallies.
        merged: u64,
        /// The coordinator's count.
        reported: u64,
    },
    /// The shards' detected-frame counts do not add up to the engine total.
    DetectorFrameMismatch {
        /// Sum of the per-shard counts.
        merged: u64,
        /// The coordinator's count.
        reported: u64,
    },
    /// The per-shard dropped-frame tallies of a query do not add up to its
    /// global count.
    DroppedMismatch {
        /// Query registration index.
        query: usize,
        /// Sum of the per-shard tallies.
        merged: u64,
        /// The coordinator's count.
        reported: u64,
    },
    /// A summed per-shard fault or cache tally disagrees with the
    /// coordinator's total.
    FaultTallyMismatch {
        /// Which tally disagreed: `"retries"`, `"backoff_cost"`,
        /// `"failed_frames"`, `"cache_hits"`, `"cache_misses"`,
        /// `"cache_evictions"` or `"cache_admission_rejects"`.
        field: &'static str,
        /// Sum of the per-shard tallies.
        merged: u64,
        /// The coordinator's total.
        reported: u64,
    },
    /// A shard's batch tally covers a different number of invocations than
    /// its physical call count (every physical call must be recorded as
    /// exactly one batch).
    BatchCountMismatch {
        /// The offending shard.
        shard: u32,
        /// Batches the shard recorded.
        batches: u64,
        /// Physical calls the shard tallied.
        calls: u64,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::QueryCountMismatch {
                shard,
                shard_queries,
                report_queries,
            } => write!(
                f,
                "shard {shard} tallies {shard_queries} queries but the report has {report_queries}"
            ),
            MergeError::FrameMismatch {
                query,
                merged,
                reported,
            } => write!(
                f,
                "query {query}: shard frame tallies sum to {merged} but the engine observed {reported}"
            ),
            MergeError::HitMismatch {
                query,
                merged,
                reported,
            } => write!(
                f,
                "query {query}: shard hit tallies sum to {merged} but the engine found {reported}"
            ),
            MergeError::DetectorFrameMismatch { merged, reported } => write!(
                f,
                "shard detector-frame tallies sum to {merged} but the engine paid {reported}"
            ),
            MergeError::DroppedMismatch {
                query,
                merged,
                reported,
            } => write!(
                f,
                "query {query}: shard dropped-frame tallies sum to {merged} but the engine \
                 dropped {reported}"
            ),
            MergeError::FaultTallyMismatch {
                field,
                merged,
                reported,
            } => write!(
                f,
                "shard {field} tallies sum to {merged} but the engine recorded {reported}"
            ),
            MergeError::BatchCountMismatch {
                shard,
                batches,
                calls,
            } => write!(
                f,
                "shard {shard} recorded {batches} batches but tallied {calls} physical calls"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// A merged global report with its per-shard breakdown.
#[derive(Debug, Clone)]
#[must_use = "a sharded report carries the run's outcomes and cost accounting"]
pub struct ShardedReport {
    /// The global report — bitwise-identical to an unsharded run of the same
    /// queries (cache off), for any shard count and partitioner.
    pub report: EngineReport,
    /// Per-shard breakdowns, in shard order.
    pub shards: Vec<ShardReport>,
    /// Physical `detect_batch` invocations summed over shards.  Exceeds
    /// `report.detector_calls` (the logical count) when a stage's detector
    /// group spans several shards.
    pub physical_detector_calls: u64,
    /// Batch-size statistics merged over the shards' physical invocations
    /// (`physical_batches.count == physical_detector_calls`).  Cross-shard
    /// aggregation shows up here as fewer, larger batches at unchanged
    /// logical outcomes.
    pub physical_batches: BatchStats,
}

impl ShardedReport {
    /// Extra detector invocations paid because detector groups split across
    /// shards — the sharding overhead the merge layer exists to account for.
    pub fn shard_overhead_calls(&self) -> u64 {
        self.physical_detector_calls - self.report.detector_calls
    }
}

/// Combine per-shard reports into a global [`ShardedReport`].
///
/// `report` is the coordinator's view (outcomes in registration order plus
/// logical cost totals); `shards` are the per-shard tallies.  Per-query frame
/// and hit counts and the global detected-frame total are recomputed from the
/// shard tallies and cross-checked against the coordinator.
///
/// # Errors
/// Returns a [`MergeError`] naming the first inconsistency found.
pub fn merge_reports(
    report: EngineReport,
    shards: Vec<ShardReport>,
) -> Result<ShardedReport, MergeError> {
    let queries = report.outcomes.len();
    for shard in &shards {
        if shard.per_query.len() != queries {
            return Err(MergeError::QueryCountMismatch {
                shard: shard.shard,
                shard_queries: shard.per_query.len(),
                report_queries: queries,
            });
        }
    }
    for (i, outcome) in report.outcomes.iter().enumerate() {
        let merged_frames: u64 = shards.iter().map(|s| s.per_query[i].frames).sum();
        if merged_frames != outcome.frames_processed {
            return Err(MergeError::FrameMismatch {
                query: i,
                merged: merged_frames,
                reported: outcome.frames_processed,
            });
        }
        let merged_hits: u64 = shards.iter().map(|s| s.per_query[i].hits).sum();
        if merged_hits != outcome.true_found as u64 {
            return Err(MergeError::HitMismatch {
                query: i,
                merged: merged_hits,
                reported: outcome.true_found as u64,
            });
        }
        let merged_dropped: u64 = shards.iter().map(|s| s.per_query[i].dropped).sum();
        if merged_dropped != outcome.dropped_frames {
            return Err(MergeError::DroppedMismatch {
                query: i,
                merged: merged_dropped,
                reported: outcome.dropped_frames,
            });
        }
    }
    let merged_detector_frames: u64 = shards.iter().map(|s| s.detector_frames).sum();
    if merged_detector_frames != report.detector_frames {
        return Err(MergeError::DetectorFrameMismatch {
            merged: merged_detector_frames,
            reported: report.detector_frames,
        });
    }
    type ShardTally = fn(&ShardReport) -> u64;
    let fault_tallies: [(&'static str, ShardTally, u64); 7] = [
        ("retries", |s| s.retries, report.detect_retries),
        ("backoff_cost", |s| s.backoff_cost, report.backoff_cost),
        ("failed_frames", |s| s.failed_frames, report.failed_frames),
        ("cache_hits", |s| s.cache.hits, report.cache.hits),
        ("cache_misses", |s| s.cache.misses, report.cache.misses),
        (
            "cache_evictions",
            |s| s.cache.evictions,
            report.cache.evictions,
        ),
        (
            "cache_admission_rejects",
            |s| s.cache.admission_rejects,
            report.cache.admission_rejects,
        ),
    ];
    for (field, shard_tally, reported) in fault_tallies {
        let merged: u64 = shards.iter().map(shard_tally).sum();
        if merged != reported {
            return Err(MergeError::FaultTallyMismatch {
                field,
                merged,
                reported,
            });
        }
    }
    let mut physical_batches = BatchStats::default();
    for shard in &shards {
        if shard.batches.count != shard.detector_calls {
            return Err(MergeError::BatchCountMismatch {
                shard: shard.shard,
                batches: shard.batches.count,
                calls: shard.detector_calls,
            });
        }
        physical_batches.merge(&shard.batches);
    }
    let physical_detector_calls = shards.iter().map(|s| s.detector_calls).sum();
    Ok(ShardedReport {
        report,
        shards,
        physical_detector_calls,
        physical_batches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryReport;

    fn report(frames: &[u64], hits: &[usize], detector_frames: u64) -> EngineReport {
        EngineReport {
            outcomes: frames
                .iter()
                .zip(hits)
                .enumerate()
                .map(|(i, (&frames_processed, &true_found))| QueryReport {
                    label: format!("q{i}"),
                    policy: "test".to_string(),
                    frames_processed,
                    distinct_found: true_found,
                    true_found,
                    found_instances: Vec::new(),
                    trajectory: Vec::new(),
                    upfront_scan_frames: 0,
                    dropped_frames: 0,
                    selection: None,
                    stop_reason: None,
                })
                .collect(),
            stages: 3,
            demanded_frames: frames.iter().sum(),
            detector_frames,
            detector_calls: 3,
            detect_retries: 0,
            failed_frames: 0,
            backoff_cost: 0,
            cache: CacheActivity::default(),
            quarantined_detectors: Vec::new(),
        }
    }

    fn shard(shard: u32, per_query: &[(u64, u64)], frames: u64, calls: u64) -> ShardReport {
        let mut batches = BatchStats::default();
        // One batch per call, frames spread as evenly as the helper can
        // (`checked_div` is `None` exactly when there are no calls).
        if let Some(even) = frames.checked_div(calls) {
            batches.record_repeat(even, calls - 1);
            batches.record(frames - even * (calls - 1));
        }
        ShardReport {
            shard,
            detector_frames: frames,
            detector_calls: calls,
            retries: 0,
            backoff_cost: 0,
            failed_frames: 0,
            batches,
            cache: CacheActivity::default(),
            per_query: per_query
                .iter()
                .map(|&(frames, hits)| ShardQueryTally {
                    frames,
                    hits,
                    dropped: 0,
                })
                .collect(),
            per_detector: Vec::new(),
        }
    }

    #[test]
    fn consistent_tallies_merge_and_report_overhead() {
        let global = report(&[10, 6], &[3, 1], 14);
        let merged = merge_reports(
            global,
            vec![
                shard(0, &[(7, 2), (2, 0)], 9, 3),
                shard(1, &[(3, 1), (4, 1)], 5, 2),
            ],
        )
        .unwrap();
        assert_eq!(merged.physical_detector_calls, 5);
        assert_eq!(merged.shard_overhead_calls(), 2);
        assert_eq!(merged.shards.len(), 2);
        assert_eq!(merged.report.outcomes[0].frames_processed, 10);
    }

    #[test]
    fn frame_mismatch_is_detected() {
        let global = report(&[10], &[0], 10);
        let err = merge_reports(global, vec![shard(0, &[(9, 0)], 10, 1)]).unwrap_err();
        assert!(matches!(
            err,
            MergeError::FrameMismatch {
                query: 0,
                merged: 9,
                reported: 10
            }
        ));
        assert!(err.to_string().contains("sum to 9"));
    }

    #[test]
    fn hit_and_detector_frame_mismatches_are_detected() {
        let global = report(&[4], &[2], 4);
        let err = merge_reports(global.clone(), vec![shard(0, &[(4, 1)], 4, 1)]).unwrap_err();
        assert!(matches!(err, MergeError::HitMismatch { .. }));
        let err = merge_reports(global, vec![shard(0, &[(4, 2)], 3, 1)]).unwrap_err();
        assert!(matches!(err, MergeError::DetectorFrameMismatch { .. }));
    }

    #[test]
    fn fault_tallies_merge_and_mismatches_are_detected() {
        // A degraded run: 2 retries, backoff 12, one failed frame, one
        // dropped pick on query 0 — split across two shards.
        let mut global = report(&[10, 6], &[3, 1], 14);
        global.detect_retries = 2;
        global.backoff_cost = 12;
        global.failed_frames = 1;
        global.outcomes[0].dropped_frames = 1;
        let mut a = shard(0, &[(7, 2), (2, 0)], 9, 3);
        a.retries = 2;
        a.backoff_cost = 12;
        a.failed_frames = 1;
        a.per_query[0].dropped = 1;
        let b = shard(1, &[(3, 1), (4, 1)], 5, 2);
        let merged = merge_reports(global.clone(), vec![a.clone(), b.clone()]).unwrap();
        assert_eq!(merged.report.detect_retries, 2);
        assert_eq!(merged.report.failed_frames, 1);

        // Shard retry tallies that don't add up are a typed error…
        let mut bad = a.clone();
        bad.retries = 1;
        let err = merge_reports(global.clone(), vec![bad, b.clone()]).unwrap_err();
        assert!(matches!(
            err,
            MergeError::FaultTallyMismatch {
                field: "retries",
                merged: 1,
                reported: 2
            }
        ));
        assert!(err.to_string().contains("retries"));

        // …and so are per-query dropped tallies.
        let mut bad = a;
        bad.per_query[0].dropped = 0;
        let err = merge_reports(global, vec![bad, b]).unwrap_err();
        assert!(matches!(
            err,
            MergeError::DroppedMismatch {
                query: 0,
                merged: 0,
                reported: 1
            }
        ));
    }

    #[test]
    fn cache_tallies_merge_and_mismatches_are_detected() {
        // A cached run: 5 hits, 9 misses, 2 evictions, 1 admission reject,
        // split across two shards (the arbitration charges evictions and
        // rejects to the shard whose insert caused them).
        let mut global = report(&[10, 6], &[3, 1], 14);
        global.cache = CacheActivity {
            hits: 5,
            misses: 9,
            evictions: 2,
            admission_rejects: 1,
        };
        let mut a = shard(0, &[(7, 2), (2, 0)], 9, 3);
        a.cache = CacheActivity {
            hits: 2,
            misses: 7,
            evictions: 2,
            admission_rejects: 0,
        };
        let mut b = shard(1, &[(3, 1), (4, 1)], 5, 2);
        b.cache = CacheActivity {
            hits: 3,
            misses: 2,
            evictions: 0,
            admission_rejects: 1,
        };
        let merged = merge_reports(global.clone(), vec![a.clone(), b.clone()]).unwrap();
        assert_eq!(merged.report.cache.hits, 5);
        assert_eq!(merged.report.cache.admission_rejects, 1);

        let mut bad = a.clone();
        bad.cache.hits = 1;
        let err = merge_reports(global.clone(), vec![bad, b.clone()]).unwrap_err();
        assert!(matches!(
            err,
            MergeError::FaultTallyMismatch {
                field: "cache_hits",
                merged: 4,
                reported: 5
            }
        ));
        assert!(err.to_string().contains("cache_hits"));

        let mut bad = a;
        bad.cache.evictions = 1;
        let err = merge_reports(global, vec![bad, b]).unwrap_err();
        assert!(matches!(
            err,
            MergeError::FaultTallyMismatch {
                field: "cache_evictions",
                merged: 1,
                reported: 2
            }
        ));
    }

    #[test]
    fn batch_stats_record_merge_and_mean() {
        let mut stats = BatchStats::default();
        assert_eq!(stats.mean(), 0.0);
        stats.record(6);
        stats.record_repeat(1, 3);
        assert_eq!(stats.count, 4);
        assert_eq!(stats.frames, 9);
        assert_eq!(stats.min, 1);
        assert_eq!(stats.max, 6);
        assert_eq!(stats.mean(), 2.25);

        let mut other = BatchStats::default();
        other.record(10);
        other.merge(&stats);
        assert_eq!(other.count, 5);
        assert_eq!(other.frames, 19);
        assert_eq!(other.min, 1);
        assert_eq!(other.max, 10);
        // Merging an empty tally is a no-op (min stays meaningful).
        other.merge(&BatchStats::default());
        assert_eq!(other.min, 1);
        assert!(other.to_string().contains("5 batches"));
    }

    #[test]
    fn merged_batches_cover_all_shards_and_count_mismatch_is_detected() {
        let global = report(&[10, 6], &[3, 1], 14);
        let merged = merge_reports(
            global.clone(),
            vec![
                shard(0, &[(7, 2), (2, 0)], 9, 3),
                shard(1, &[(3, 1), (4, 1)], 5, 2),
            ],
        )
        .unwrap();
        assert_eq!(
            merged.physical_batches.count,
            merged.physical_detector_calls
        );
        assert_eq!(merged.physical_batches.frames, 14);

        // A batch count that disagrees with the call tally is a typed error.
        let mut bad = shard(0, &[(10, 3), (6, 1)], 14, 3);
        bad.batches.count = 2;
        let err = merge_reports(global, vec![bad]).unwrap_err();
        assert!(matches!(
            err,
            MergeError::BatchCountMismatch {
                shard: 0,
                batches: 2,
                calls: 3
            }
        ));
        assert!(err.to_string().contains("2 batches"));
    }

    #[test]
    fn query_count_mismatch_is_detected() {
        let global = report(&[4, 4], &[0, 0], 8);
        let err = merge_reports(global, vec![shard(1, &[(8, 0)], 8, 1)]).unwrap_err();
        assert!(matches!(
            err,
            MergeError::QueryCountMismatch { shard: 1, .. }
        ));
    }
}
