//! Typed errors for the engine entry points.
//!
//! The seed implementation wired Algorithm 1 by hand and `assert!`ed its
//! invariants (most notably the sampler-vs-chunking chunk-count agreement);
//! since the engine is the seam a long-running multi-query service is built on,
//! misconfiguration must surface as a recoverable [`EngineError`] instead of a
//! panic.

use exsample_detect::DetectError;
use exsample_video::FrameId;
use std::fmt;

/// A sampler was wired to a chunking with a different number of chunks.
///
/// Every per-chunk statistic of an ExSample sampler belongs to one chunk of a
/// concrete chunking; pairing a sampler with a chunking of a different size
/// would silently misattribute feedback, so adapter constructors (e.g.
/// [`crate::ExSamplePolicy::from_sampler`]) return this typed error instead
/// (historically this was an `assert_eq!`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkCountMismatch {
    /// Number of chunks the sampler was built with.
    pub sampler_chunks: usize,
    /// Number of chunks in the chunking it was paired with.
    pub chunking_chunks: usize,
}

impl fmt::Display for ChunkCountMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sampler and chunking disagree on the number of chunks: \
             sampler has {}, chunking has {}",
            self.sampler_chunks, self.chunking_chunks
        )
    }
}

impl std::error::Error for ChunkCountMismatch {}

/// A configuration error detected by an engine entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A sampler was paired with a chunking holding a different number of
    /// chunks (see [`ChunkCountMismatch`]).
    ChunkCountMismatch(ChunkCountMismatch),
    /// A query was submitted with a batch size of zero; the engine could never
    /// make progress on it.
    ZeroBatch {
        /// Label of the offending query.
        label: String,
    },
    /// [`crate::QueryEngine::run`] was called with no queries registered.
    NoQueries,
    /// A shard spec was paired with a chunking holding a different number of
    /// chunks: the chunk→shard assignment would be meaningless, so
    /// [`crate::ShardRouter::new`] rejects the pair.
    ShardSpecMismatch {
        /// Number of chunks the shard spec covers.
        spec_chunks: usize,
        /// Number of chunks in the chunking it was paired with.
        chunking_chunks: usize,
    },
    /// An execution mode that can never make progress was requested —
    /// `ExecutionMode::Parallel(0)` asks for a worker pool with no threads.
    /// (A thread count *exceeding* the shard count is not an error: the
    /// engine clamps it to one thread per shard, the documented rule.)
    InvalidExecution {
        /// The rejected thread count.
        threads: usize,
    },
    /// A detector's fallible detect path failed and the engine is running in
    /// fail-fast mode (the default [`crate::FailureMode::FailFast`]).
    ///
    /// The retry policy (if any) was exhausted before this error was raised:
    /// `attempts` counts every attempt made on the frame during the stage,
    /// including the failed batch probe.  The underlying
    /// [`DetectError`] is preserved and surfaced through
    /// [`std::error::Error::source`].  The run stops at the offending stage;
    /// the engine's reports and cost accounting are unspecified after this
    /// error.
    DetectorFailed {
        /// Class label of the failing detector (as registered with the engine).
        class: String,
        /// The frame whose detection could not be completed.
        frame: FrameId,
        /// Total attempts made on the frame this stage (batch probe included).
        attempts: u32,
        /// The final error returned by the detector.
        source: DetectError,
    },
    /// A cache configuration that can never hold an entry was requested —
    /// [`crate::cache::CacheConfig`] with a zero capacity or a zero stripe
    /// count.  (The builder's `stripes` knob rounds *up* to a power of two,
    /// so any positive stripe count is accepted; only zero is rejected.)
    InvalidCache {
        /// The rejected capacity.
        capacity: usize,
        /// The rejected stripe count.
        stripes: usize,
    },
    /// The installed [`crate::StageSink`] rejected a stage commit.
    ///
    /// The sink is flushed serially at the stage-commit boundary; a sink that
    /// cannot persist the stage's observations (e.g. a durable checkpoint
    /// store hitting an I/O failure) aborts the run here rather than letting
    /// the in-memory run drift ahead of its checkpoint.  The message is the
    /// sink's own description; sinks that carry a richer typed error keep it
    /// on their side of the seam and re-chain it at their layer.
    CheckpointFailed {
        /// The stage whose commit the sink rejected.
        stage: u64,
        /// The sink's description of the failure.
        message: String,
    },
    /// A worker lane's detect pass panicked during a parallel stage.
    ///
    /// Both dispatch runtimes catch detector panics on every lane (the pooled
    /// runtime on helper threads and the coordinator's inline lane alike, the
    /// scoped runtime on each spawned scope thread) and surface them as this
    /// typed error instead of unwinding the coordinator or — worse — leaving
    /// it blocked on a completion channel.  The run stops at the offending
    /// stage; the engine's reports and cost accounting are unspecified after
    /// this error.
    WorkerPanicked {
        /// The panic message of the first lane (in chunk order) that failed.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ChunkCountMismatch(inner) => inner.fmt(f),
            EngineError::ZeroBatch { label } => {
                write!(f, "query `{label}` was submitted with batch size 0")
            }
            EngineError::NoQueries => write!(f, "the engine has no queries to run"),
            EngineError::ShardSpecMismatch {
                spec_chunks,
                chunking_chunks,
            } => write!(
                f,
                "shard spec and chunking disagree on the number of chunks: \
                 spec covers {spec_chunks}, chunking has {chunking_chunks}"
            ),
            EngineError::InvalidExecution { threads } => write!(
                f,
                "parallel execution requires at least one worker thread (got {threads}); \
                 use 1 thread (or serial mode) for single-threaded execution"
            ),
            EngineError::DetectorFailed {
                class,
                frame,
                attempts,
                ..
            } => write!(
                f,
                "the `{class}` detector failed on frame {frame} after {attempts} attempt(s)"
            ),
            EngineError::InvalidCache { capacity, stripes } => write!(
                f,
                "the detections cache needs a positive capacity and stripe count \
                 (got capacity {capacity}, stripes {stripes})"
            ),
            EngineError::CheckpointFailed { stage, message } => write!(
                f,
                "the stage sink rejected the commit of stage {stage}: {message}"
            ),
            EngineError::WorkerPanicked { message } => write!(
                f,
                "a DETECT worker lane panicked during a parallel stage: {message}"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::ChunkCountMismatch(inner) => Some(inner),
            EngineError::DetectorFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ChunkCountMismatch> for EngineError {
    fn from(inner: ChunkCountMismatch) -> Self {
        EngineError::ChunkCountMismatch(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_are_wired() {
        let mismatch = ChunkCountMismatch {
            sampler_chunks: 4,
            chunking_chunks: 8,
        };
        let err = EngineError::from(mismatch);
        assert!(err.to_string().contains("disagree"));
        assert!(std::error::Error::source(&err).is_some());
        assert!(EngineError::NoQueries.to_string().contains("no queries"));
        let zero = EngineError::ZeroBatch {
            label: "q0".to_string(),
        };
        assert!(zero.to_string().contains("q0"));
        assert!(std::error::Error::source(&zero).is_none());
        let shard = EngineError::ShardSpecMismatch {
            spec_chunks: 5,
            chunking_chunks: 4,
        };
        assert!(shard.to_string().contains("spec covers 5"));
        assert!(std::error::Error::source(&shard).is_none());
        let execution = EngineError::InvalidExecution { threads: 0 };
        assert!(execution.to_string().contains("at least one worker thread"));
        assert!(execution.to_string().contains("got 0"));
        assert!(std::error::Error::source(&execution).is_none());
        let cache = EngineError::InvalidCache {
            capacity: 0,
            stripes: 4,
        };
        assert!(cache.to_string().contains("capacity 0"));
        assert!(cache.to_string().contains("stripes 4"));
        assert!(std::error::Error::source(&cache).is_none());
        let checkpoint = EngineError::CheckpointFailed {
            stage: 7,
            message: "log append hit EIO".to_string(),
        };
        assert!(checkpoint.to_string().contains("stage 7"));
        assert!(checkpoint.to_string().contains("EIO"));
        assert!(std::error::Error::source(&checkpoint).is_none());
        let panicked = EngineError::WorkerPanicked {
            message: "detector exploded".to_string(),
        };
        assert!(panicked.to_string().contains("detector exploded"));
        assert!(panicked.to_string().contains("worker lane panicked"));
        assert!(std::error::Error::source(&panicked).is_none());
    }

    #[test]
    fn detector_failed_chains_its_source() {
        let inner = DetectError::Transient {
            frame: 41,
            message: "socket reset".to_string(),
        };
        let err = EngineError::DetectorFailed {
            class: "car".to_string(),
            frame: 41,
            attempts: 3,
            source: inner.clone(),
        };
        assert!(err.to_string().contains("`car`"));
        assert!(err.to_string().contains("frame 41"));
        assert!(err.to_string().contains("3 attempt(s)"));
        let source = std::error::Error::source(&err).expect("DetectorFailed must chain its source");
        assert_eq!(source.to_string(), inner.to_string());
    }
}
