//! The persistent worker-pool execution runtime.
//!
//! PR 4 ran the DETECT phase of a parallel stage on `std::thread::scope`
//! threads spawned — and joined — *inside every stage*.  On the bench host
//! that dispatch overhead dominated the simulated detector entirely: the
//! `parallel_detect` rows of `BENCH_sharded.json` ran ~23–34% slower than
//! serial, purely from per-stage thread spawn+join.  This module replaces
//! per-stage spawning with a [`WorkerPool`] of long-lived worker threads
//! created **once per engine run** and reused by every parallel stage of that
//! run:
//!
//! * **Spawn once, dispatch many.**  [`crate::QueryEngine::run_with`] (and
//!   [`crate::QueryEngine::run`]) open one `std::thread::scope` around the
//!   whole stage loop and spawn `n - 1` helper threads into it (the calling
//!   thread itself is the `n`-th lane — it detects the first worker chunk
//!   inline instead of sleeping on a channel).  Each stage then queues work
//!   on the already-running helpers' Mutex+Condvar **turnstiles** — a condvar
//!   wake, not a thread spawn.  No busy-waiting anywhere: idle helpers are
//!   parked in `Condvar::wait`.
//! * **Help-first reclaim.**  After detecting its own chunk, the coordinator
//!   *reclaims* any queued chunk whose helper has not started it and runs it
//!   inline.  On a saturated or single-vCPU host — where a helper wake could
//!   only add scheduling latency — the whole handoff therefore collapses to
//!   two uncontended mutex operations and the stage never blocks; on idle
//!   multicore hardware the helpers win the race and the chunks execute
//!   genuinely in parallel.  Which side runs a chunk affects wall-clock
//!   placement only, never results.
//! * **Worker-resident lanes.**  The per-shard [`ShardWorker`]s — lanes,
//!   result maps, detect scratch — are *moved* into the stage's jobs and
//!   moved back with the results, so every allocation they carry is recycled
//!   across stages and across runs; nothing is rebuilt per stage, and no
//!   `unsafe` is needed to share them (ownership transfer, not aliasing).
//!   The chunk buffers that carry workers through the channels are recycled
//!   by the pool itself ([`WorkerPool::spare`]).
//! * **Phase structure preserved.**  The per-worker *probe* and *detect*
//!   phases are dispatched (each lane probes the lock-striped cache for its
//!   own workers — membership reads and commutative tallies only); the
//!   serial commit arbitration ([`crate::cache::CacheTxn`]) and the
//!   registration-order fan-out run on the coordinator exactly as in serial
//!   mode, which is why pooled execution stays bitwise-identical to serial
//!   (the determinism suite pins threads {1, 2, 4} × shards {1, 3, 7} × both
//!   partitioners × both dispatch modes).
//! * **Clean shutdown, typed panics.**  Helpers exit when the pool (and with
//!   it every job `Sender`) is dropped — the engine guarantees this happens
//!   before the scope closes, even if a stage errors or a caller hook panics,
//!   so a run can never leak or deadlock its threads, and the scope joins
//!   every helper before `run` returns.  A detector panic inside any lane
//!   (helper *or* the coordinator's inline lane) is caught, the affected
//!   workers are returned to the engine, and the stage surfaces
//!   [`EngineError::WorkerPanicked`] instead of unwinding or hanging.
//!
//! [`Dispatch::Scoped`] keeps the legacy per-stage `std::thread::scope`
//! behaviour selectable, so the `sharded` bench can track the dispatch
//! overhead delta between the two runtimes.

use crate::cache::StripedDetectionCache;
use crate::error::EngineError;
use crate::shard::{aggregate_detect, DetectPolicy, ShardWorker};
use exsample_detect::Detector;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::Scope;

/// How a parallel stage hands DETECT work to threads.
///
/// Orthogonal to [`crate::ExecutionMode`]: the execution mode says *how many*
/// threads run the shard workers' detect phases, the dispatch mode says *how
/// work reaches them*.  Both modes are bitwise-identical in every observable
/// result — the determinism suite pins pooled and scoped dispatch against
/// serial execution over the full thread/shard/partitioner matrix — so the
/// only difference is dispatch overhead, which the `sharded` bench's
/// `parallel_detect` (pooled) vs `parallel_detect_scoped` (scoped) axes
/// track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// Dispatch stages to a persistent [`WorkerPool`] spawned once per engine
    /// run (the default).  Per-stage dispatch cost is a turnstile hand-off —
    /// a mutex-guarded job slot and a condvar wake — per helper thread, and
    /// chunks a helper has not started are reclaimed and run inline by the
    /// coordinator.
    #[default]
    Pooled,
    /// Spawn and join a fresh set of `std::thread::scope` threads in every
    /// stage — the pre-runtime behaviour, kept selectable as the overhead
    /// baseline.  A detector panic is caught on each scope thread and
    /// surfaces as the same typed [`EngineError::WorkerPanicked`] the pooled
    /// runtime reports (first panic in chunk order).
    Scoped,
}

/// Live pool helper threads in this process (across all engines).
///
/// Incremented when a helper thread starts and decremented when it exits; the
/// runtime lifecycle tests assert this returns to zero after every run, which
/// is the "no leaked threads" guarantee made observable.
static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Pool helper threads ever spawned in this process (cumulative).
static SPAWNED_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Number of pool helper threads currently alive in this process.
///
/// Diagnostic for tests and telemetry: pools live only for the duration of an
/// engine run, so outside any [`crate::QueryEngine::run`] call this is zero —
/// repeated runs cannot accumulate threads.
pub fn live_worker_threads() -> usize {
    LIVE_WORKERS.load(Ordering::SeqCst)
}

/// Cumulative number of pool helper threads ever spawned in this process.
///
/// Diagnostic for tests and telemetry: an `n`-way parallel run grows this by
/// exactly `n - 1` — once per run, regardless of how many stages the run
/// executes — which is the runtime lifecycle tests' proof that per-stage
/// thread spawning is gone.
pub fn spawned_worker_threads() -> usize {
    SPAWNED_WORKERS.load(Ordering::SeqCst)
}

/// RAII tally of a helper thread's lifetime in [`LIVE_WORKERS`].
struct LiveGuard;

impl LiveGuard {
    fn new() -> Self {
        LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
        SPAWNED_WORKERS.fetch_add(1, Ordering::SeqCst);
        LiveGuard
    }
}

impl Drop for LiveGuard {
    fn drop(&mut self) {
        LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The immutable per-stage context every lane needs to run its probe and
/// detect phases: the stage's logical detector groups, their registry slots,
/// whether same-slot lanes share results (cache on, coalescing off), the
/// stage's fault-handling policy, and the shared striped cache (probed from
/// the lane thread itself — stripe reads and commutative tallies only, so
/// which thread probes never affects accounting).  Shared across lanes
/// behind one `Arc` per stage.
pub(crate) struct StageCtx<'a> {
    pub(crate) detectors: Vec<&'a dyn Detector>,
    pub(crate) slots: Vec<u32>,
    pub(crate) share_lanes: bool,
    pub(crate) policy: DetectPolicy,
    /// The shared cross-stage cache, when enabled: each lane probes its own
    /// workers before detecting them.
    pub(crate) cache: Option<Arc<StripedDetectionCache>>,
    /// Whether lanes coalesce (sort + dedup) their frames before probing.
    pub(crate) coalesce: bool,
    /// When set, a chunk's workers are detected together by cross-shard
    /// batch aggregation ([`aggregate_detect`]) with this flush limit,
    /// instead of each worker running its own per-shard lanes.  Aggregated
    /// stages ship *all* workers as one chunk — the aggregated batch is the
    /// cross-shard batch, so there is nothing left to split across lanes.
    pub(crate) aggregate: Option<usize>,
}

/// One stage's work for one helper lane: the contiguous chunk of shard
/// workers it owns this stage (by value — ownership transfer is what makes
/// the handoff safe without locks) plus the shared stage context.
struct Job<'a> {
    /// Index of this chunk in the stage's worker partition (chunk 0 is the
    /// coordinator's inline lane and never crosses a channel).
    chunk: usize,
    ctx: Arc<StageCtx<'a>>,
    workers: Vec<ShardWorker>,
}

/// A lane's completed stage work, sent back to the coordinator.
struct Done {
    chunk: usize,
    /// The chunk's workers, returned even when the lane panicked (their
    /// buffers are recycled into the next stage; a panicked stage's tallies
    /// are unspecified, but the run is erroring out anyway).
    workers: Vec<ShardWorker>,
    /// The panic message, if the lane's detect pass panicked.
    panic: Option<String>,
}

/// An in-flight dispatched stage: the handle [`WorkerPool::dispatch_stage`]
/// (or [`WorkerPool::dispatch_whole`]) returns and exactly one
/// [`WorkerPool::join_stage`] call consumes.  Between the two calls, chunks
/// `1..` of the stage sit on (or run from) the helper turnstiles while chunk
/// 0 still lives in the engine's worker vector — which is what lets the
/// coordinator interleave other work (the next stage's PICK) with the
/// helpers' DETECT.
pub(crate) struct StageDispatch<'a> {
    chunks: usize,
    ctx: Arc<StageCtx<'a>>,
}

/// Render a caught panic payload as the message carried by
/// [`EngineError::WorkerPanicked`].
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(message) => *message,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(message) => (*message).to_string(),
            Err(_) => "worker panicked with a non-string payload".to_string(),
        },
    }
}

/// Run one lane's probe + detect pass, catching panics so a poisoned
/// detector can never strand the coordinator (the lane always reports back).
/// The cache probe runs here — on the lane's own thread, as the first half
/// of the dispatched work — rather than as a serial coordinator pass; see
/// the cache module docs for why probe placement cannot affect accounting.
/// Each worker is probed exactly once per stage (the engine never
/// pre-probes dispatched workers).  Typed detect failures are *not* errors
/// here: they land on the workers themselves (tallies and
/// [`ShardWorker::fatal`]) and the engine inspects them after the stage's
/// detect pass — shared by both dispatch runtimes.
pub(crate) fn detect_chunk(workers: &mut [ShardWorker], ctx: &StageCtx<'_>) -> Option<String> {
    catch_unwind(AssertUnwindSafe(|| {
        for worker in workers.iter_mut() {
            worker.probe(&ctx.slots, ctx.coalesce, ctx.cache.as_deref());
        }
        run_detect(workers, ctx)
    }))
    .err()
    .map(panic_message)
}

/// The detect half of [`detect_chunk`] (after every worker in the chunk has
/// probed).
fn run_detect(workers: &mut [ShardWorker], ctx: &StageCtx<'_>) {
    match ctx.aggregate {
        Some(max_batch) => aggregate_detect(
            workers,
            &ctx.detectors,
            &ctx.slots,
            ctx.share_lanes,
            ctx.policy,
            max_batch,
        ),
        None => {
            for worker in workers.iter_mut() {
                worker.detect(&ctx.detectors, &ctx.slots, ctx.share_lanes, ctx.policy);
            }
        }
    }
}

/// One helper lane's handoff turnstile: a `Mutex`-guarded job slot plus the
/// `Condvar` its helper thread blocks on between stages.
///
/// The turnstile — rather than a plain channel — exists for one reason: the
/// coordinator can **reclaim** a job the helper has not started yet
/// ([`LaneState::Ready`] → taken back) and run it inline.  On a saturated or
/// single-vCPU host the helper often is not scheduled before the coordinator
/// finishes its own chunk, so reclaiming collapses the entire per-stage
/// handoff (wake, block, wake) into two uncontended mutex operations; on real
/// hardware the helper wins the race, marks the lane [`LaneState::Running`],
/// and the chunks genuinely execute in parallel.  Either way the same chunk
/// is detected with the same worker-resident state, so the race affects
/// wall-clock only — never results.
struct LaneSlot<'a> {
    state: Mutex<LaneState<'a>>,
    turnstile: Condvar,
}

/// State of one lane's turnstile.
enum LaneState<'a> {
    /// No job queued; the helper is (or will be) blocked on the condvar.
    Idle,
    /// A job is queued and may be taken by the helper *or* reclaimed by the
    /// coordinator — whichever locks the slot first.
    Ready(Job<'a>),
    /// The helper took the job and is detecting; the coordinator must await
    /// its [`Done`] on the completion channel.
    Running,
    /// The pool is shutting down; the helper exits on observing this.
    Shutdown,
}

/// A persistent pool of DETECT helper threads, spawned once per engine run
/// into the run's `std::thread::scope` and reused by every parallel stage.
///
/// The pool owns one [`LaneSlot`] per helper plus the shared completion
/// channel.  Dropping the pool flips every slot to [`LaneState::Shutdown`]
/// and wakes its helper, which exits and is joined by the enclosing scope.
/// The engine drops its pool before the scope closes on every path — normal
/// completion, stage error, or a panicking caller hook — so shutdown can
/// never hang.
pub(crate) struct WorkerPool<'a> {
    /// One turnstile per helper thread; helper `i` serves chunk `i + 1` of
    /// each dispatched stage (chunk 0 runs inline on the coordinator).
    lanes: Vec<Arc<LaneSlot<'a>>>,
    /// Consecutive chunks of each helper reclaimed by the coordinator — the
    /// wake-stickiness state: a helper at or past [`DISENGAGE_AFTER`] misses
    /// is not woken per stage, its queued chunks are simply reclaimed.
    consecutive_misses: Vec<u32>,
    /// Stages dispatched so far (drives periodic re-engagement).
    dispatched_stages: u64,
    /// Per-stage panic scratch, indexed by chunk (chunk 0 is the inline
    /// lane), so the reported panic is the first in *chunk* order no matter
    /// in which order helper completions arrive.
    lane_panics: Vec<Option<String>>,
    /// Completion channel shared by all helpers (used only for jobs a helper
    /// actually ran; reclaimed jobs never touch it).
    done_rx: Receiver<Done>,
    /// Recycled chunk buffers: the `Vec<ShardWorker>`s that carry workers
    /// through the turnstiles, reused across stages so steady-state dispatch
    /// allocates nothing but one `Arc<StageCtx>` per stage.
    spare: Vec<Vec<ShardWorker>>,
    /// Per-stage reassembly scratch, indexed by chunk.
    returned: Vec<Option<Vec<ShardWorker>>>,
}

/// Disengage a helper after this many *consecutive* reclaimed chunks.
///
/// One lost race must not cost a multicore host its parallelism — a helper
/// can lose a single race to a transient OS stall — so a helper is only
/// stopped being woken once the coordinator has reclaimed its chunk this
/// many stages in a row (the pattern of a host that is not scheduling it at
/// all, e.g. one vCPU).  Any chunk the helper does run resets its count.
const DISENGAGE_AFTER: u32 = 2;

/// Wake disengaged helpers every this many dispatched stages.
///
/// A helper whose last [`DISENGAGE_AFTER`] chunks were all reclaimed is
/// probably not getting scheduled (the host is saturated, or has one vCPU);
/// waking it again every stage would buy a context switch and nothing else,
/// so its queued chunks go un-notified — still reclaimable — until the next
/// re-engagement stage offers it work again.  On an idle multicore host a
/// helper re-engages within one period of a (multi-stage) stall — and with a
/// detector expensive enough for parallelism to matter, helpers win their
/// races and never disengage in the first place; on a 1-vCPU host the
/// steady state is one wake per helper per period instead of per stage.
const REENGAGE_PERIOD: u64 = 32;

impl Drop for WorkerPool<'_> {
    fn drop(&mut self) {
        for lane in &self.lanes {
            {
                let mut state = lane.state.lock().expect("lane mutex is never poisoned");
                *state = LaneState::Shutdown;
            }
            lane.turnstile.notify_one();
        }
    }
}

impl<'a> WorkerPool<'a> {
    /// Spawn `helpers` long-lived worker threads into `scope`.
    ///
    /// The pool supports stages of up to `helpers + 1` lanes: the calling
    /// thread always executes the first chunk inline, so an engine running
    /// `n`-way parallel stages spawns `n - 1` helpers.
    pub(crate) fn spawn<'scope, 'env>(
        scope: &'scope Scope<'scope, 'env>,
        helpers: usize,
    ) -> WorkerPool<'a>
    where
        'a: 'scope,
    {
        let (done_tx, done_rx) = channel::<Done>();
        let lanes = (0..helpers)
            .map(|lane| {
                let slot = Arc::new(LaneSlot {
                    state: Mutex::new(LaneState::Idle),
                    turnstile: Condvar::new(),
                });
                let helper_slot = Arc::clone(&slot);
                let done_tx = done_tx.clone();
                std::thread::Builder::new()
                    .name(format!("exsample-detect-{lane}"))
                    .spawn_scoped(scope, move || helper_loop(&helper_slot, &done_tx))
                    .expect("spawn DETECT pool worker thread");
                slot
            })
            .collect();
        WorkerPool {
            consecutive_misses: vec![0; helpers],
            lanes,
            dispatched_stages: 0,
            lane_panics: Vec::new(),
            done_rx,
            spare: Vec::new(),
            returned: Vec::new(),
        }
    }

    /// Execute one stage's detect pass across the pool: partition `workers`
    /// into `threads` contiguous chunks, queue chunks `1..` on the helper
    /// turnstiles, run chunk 0 inline on the calling thread, reclaim and run
    /// any queued chunk its helper has not started, then reassemble `workers`
    /// in shard order.
    ///
    /// `workers` is left in its original order with every worker's detect
    /// pass executed — exactly what the serial loop and the scoped spawn
    /// produce — so pooled dispatch is observably identical to both.
    ///
    /// Implemented as [`WorkerPool::dispatch_stage`] immediately followed by
    /// [`WorkerPool::join_stage`]; overlap-mode stages call the two halves
    /// themselves with the next stage's PICK in between.
    ///
    /// # Errors
    /// Returns [`EngineError::WorkerPanicked`] if any lane's detect pass
    /// panicked (the first panic in chunk order wins).  All workers are
    /// reassembled into `workers` even on error; the stage they carry is
    /// incomplete, so the engine abandons it and surfaces the error.
    pub(crate) fn run_stage(
        &mut self,
        workers: &mut Vec<ShardWorker>,
        threads: usize,
        ctx: StageCtx<'a>,
    ) -> Result<(), EngineError> {
        let dispatch = self.dispatch_stage(workers, threads, ctx);
        self.join_stage(workers, dispatch)
    }

    /// First half of a stage's detect pass: queue chunks `1..` on the helper
    /// turnstiles and return the in-flight stage handle.  Chunk 0 stays in
    /// `workers`; it is detected by [`WorkerPool::join_stage`], which must be
    /// called exactly once with the returned handle (the coordinator may do
    /// other work — e.g. the next stage's PICK — in between).
    pub(crate) fn dispatch_stage(
        &mut self,
        workers: &mut Vec<ShardWorker>,
        threads: usize,
        ctx: StageCtx<'a>,
    ) -> StageDispatch<'a> {
        let total = workers.len();
        let per_chunk = total.div_ceil(threads);
        let chunks = total.div_ceil(per_chunk);
        debug_assert!(
            chunks <= self.lanes.len() + 1,
            "stage needs {chunks} lanes but the pool has {} helpers + 1 inline",
            self.lanes.len()
        );
        let ctx = Arc::new(ctx);
        self.begin_dispatch();

        // Carve chunks 1.. off the tail (cheap: draining a suffix shifts
        // nothing) and queue them on their helper turnstiles; chunk 0 stays
        // in `workers`.  Every queued lane was left Idle by the previous
        // stage (its Done was collected, or the coordinator reclaimed it).
        for chunk in (1..chunks).rev() {
            let mut buf = self.spare.pop().unwrap_or_default();
            buf.extend(workers.drain(chunk * per_chunk..));
            self.queue_chunk(chunk, buf, &ctx);
        }
        StageDispatch { chunks, ctx }
    }

    /// Dispatch an *aggregated* stage: every worker ships as one job (chunk
    /// 1) to the first helper, and the coordinator's inline chunk 0 is empty.
    ///
    /// Cross-shard aggregation turns the whole detect pass into one
    /// serialised gather/scatter, so there is no partition to spread over
    /// lanes — but shipping it to a helper lets the coordinator run the next
    /// stage's PICK concurrently under overlap.  The job remains reclaimable
    /// exactly like any queued chunk: on a saturated host
    /// [`WorkerPool::join_stage`] takes it back and runs it inline, same two
    /// mutex operations as ever.
    pub(crate) fn dispatch_whole(
        &mut self,
        workers: &mut Vec<ShardWorker>,
        ctx: StageCtx<'a>,
    ) -> StageDispatch<'a> {
        debug_assert!(
            !self.lanes.is_empty(),
            "dispatching a whole stage needs at least one helper"
        );
        let ctx = Arc::new(ctx);
        self.begin_dispatch();
        let mut buf = self.spare.pop().unwrap_or_default();
        buf.append(workers);
        self.queue_chunk(1, buf, &ctx);
        StageDispatch { chunks: 2, ctx }
    }

    fn begin_dispatch(&mut self) {
        self.dispatched_stages += 1;
    }

    /// Queue one chunk on its helper's turnstile and wake the helper if it
    /// is engaged.
    fn queue_chunk(&mut self, chunk: usize, buf: Vec<ShardWorker>, ctx: &Arc<StageCtx<'a>>) {
        let reengage = self.dispatched_stages.is_multiple_of(REENGAGE_PERIOD);
        let slot = &self.lanes[chunk - 1];
        {
            let mut state = slot.state.lock().expect("lane mutex is never poisoned");
            debug_assert!(matches!(*state, LaneState::Idle));
            *state = LaneState::Ready(Job {
                chunk,
                ctx: Arc::clone(ctx),
                workers: buf,
            });
        }
        // Wake the helper — with the mutex released, so it never stalls
        // on a lock the coordinator still holds.  Disengaged helpers
        // (their last DISENGAGE_AFTER chunks were all reclaimed, so
        // waking them only buys a context switch on a host that isn't
        // scheduling them anyway) are left parked except on
        // re-engagement stages; their queued chunk is picked up by the
        // reclaim pass in [`WorkerPool::join_stage`].
        if self.consecutive_misses[chunk - 1] < DISENGAGE_AFTER || reengage {
            slot.turnstile.notify_one();
        }
    }

    /// Second half of a stage's detect pass: detect chunk 0 inline, reclaim
    /// queued chunks whose helpers have not started, await the rest, and
    /// reassemble `workers` in shard order.
    ///
    /// # Errors
    /// Returns [`EngineError::WorkerPanicked`] if any lane's detect pass
    /// panicked (the first panic in chunk order wins).  All workers are
    /// reassembled into `workers` even on error.
    pub(crate) fn join_stage(
        &mut self,
        workers: &mut Vec<ShardWorker>,
        dispatch: StageDispatch<'a>,
    ) -> Result<(), EngineError> {
        let StageDispatch { chunks, ctx } = dispatch;

        // The coordinator is the first lane: detect chunk 0 inline instead of
        // sleeping until the helpers finish.  Panics are caught exactly like
        // a helper's, so a poisoned detector surfaces as a typed error no
        // matter which shard it lives on.
        self.lane_panics.clear();
        self.lane_panics.resize_with(chunks, || None);
        self.lane_panics[0] = detect_chunk(workers, &ctx);

        // Reclaim pass: any queued chunk whose helper has not started yet is
        // taken back and detected right here.  On a busy or single-vCPU host
        // this is the common case — the handoff collapses to two mutex
        // operations and the stage never blocks — while on idle multicore
        // hardware the helpers have already flipped their lanes to Running
        // and the chunks are executing concurrently.
        self.returned.clear();
        self.returned.resize_with(chunks, || None);
        let mut outstanding = 0usize;
        for chunk in 1..chunks {
            let slot = &self.lanes[chunk - 1];
            let reclaimed = {
                let mut state = slot.state.lock().expect("lane mutex is never poisoned");
                match std::mem::replace(&mut *state, LaneState::Idle) {
                    LaneState::Ready(job) => Some(job),
                    other => {
                        *state = other;
                        None
                    }
                }
            };
            match reclaimed {
                Some(mut job) => {
                    self.consecutive_misses[chunk - 1] =
                        self.consecutive_misses[chunk - 1].saturating_add(1);
                    self.lane_panics[job.chunk] = detect_chunk(&mut job.workers, &job.ctx);
                    self.returned[job.chunk] = Some(job.workers);
                }
                None => {
                    self.consecutive_misses[chunk - 1] = 0;
                    outstanding += 1;
                }
            }
        }

        // Await the chunks a helper genuinely ran, then splice everything
        // back in shard order.
        for _ in 0..outstanding {
            let done = self
                .done_rx
                .recv()
                .expect("every running lane reports back, panicked or not");
            self.lane_panics[done.chunk] = done.panic;
            self.returned[done.chunk] = Some(done.workers);
        }
        for slot in &mut self.returned[1..] {
            let mut buf = slot.take().expect("every chunk was collected");
            workers.append(&mut buf);
            self.spare.push(buf);
        }

        // Completion order is scheduler-dependent, chunk order is not: the
        // reported panic is deterministically the first in chunk order.
        match self.lane_panics.iter_mut().find_map(Option::take) {
            Some(message) => Err(EngineError::WorkerPanicked { message }),
            None => Ok(()),
        }
    }
}

/// A helper thread's lifetime: block on the turnstile until a job is queued
/// (or shutdown is signalled), run it, report the result, repeat.
fn helper_loop(slot: &LaneSlot<'_>, done_tx: &Sender<Done>) {
    let _live = LiveGuard::new();
    loop {
        let Job {
            chunk,
            ctx,
            mut workers,
        } = {
            let mut state = slot.state.lock().expect("lane mutex is never poisoned");
            loop {
                match std::mem::replace(&mut *state, LaneState::Idle) {
                    // Won the race against a coordinator reclaim: mark the
                    // lane Running so the coordinator awaits our Done.
                    LaneState::Ready(job) => {
                        *state = LaneState::Running;
                        break job;
                    }
                    LaneState::Shutdown => {
                        *state = LaneState::Shutdown;
                        return;
                    }
                    // Idle (including spurious wakeups and reclaimed jobs):
                    // park on the turnstile — a condvar block, no busy-wait.
                    LaneState::Idle | LaneState::Running => {
                        state = slot
                            .turnstile
                            .wait(state)
                            .expect("lane mutex is never poisoned");
                    }
                }
            }
        };
        let panic = detect_chunk(&mut workers, &ctx);
        {
            let mut state = slot.state.lock().expect("lane mutex is never poisoned");
            if !matches!(*state, LaneState::Shutdown) {
                *state = LaneState::Idle;
            }
        }
        if done_tx
            .send(Done {
                chunk,
                workers,
                panic,
            })
            .is_err()
        {
            // Coordinator gone (it only drops the completion receiver with
            // the whole pool).
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_detect::{FrameDetections, ObjectClass};
    use exsample_video::FrameId;

    struct NoopDetector(ObjectClass);

    impl Detector for NoopDetector {
        fn detect(&self, frame: FrameId) -> FrameDetections {
            FrameDetections::empty(frame)
        }

        fn class(&self) -> &ObjectClass {
            &self.0
        }
    }

    struct BombDetector(ObjectClass);

    impl Detector for BombDetector {
        fn detect(&self, frame: FrameId) -> FrameDetections {
            panic!("bomb detector refuses frame {frame}")
        }

        fn class(&self) -> &ObjectClass {
            &self.0
        }
    }

    /// A worker with `frames` routed into one lane of group 0, ready for a
    /// dispatched probe + detect pass (`detect_chunk` probes; pre-probing
    /// here would double the miss lists).
    fn loaded_worker(shard: u32, frames: &[FrameId]) -> ShardWorker {
        let mut worker = ShardWorker::new(shard);
        worker.begin_stage(1, 1);
        for &frame in frames {
            worker.push_frame(0, frame);
        }
        worker
    }

    #[test]
    fn pool_round_trips_workers_and_recycles_buffers() {
        let detector = NoopDetector(ObjectClass::from("car"));
        std::thread::scope(|scope| {
            let mut pool = WorkerPool::spawn(scope, 2);
            assert_eq!(pool.lanes.len(), 2);
            let mut workers: Vec<ShardWorker> = (0..3)
                .map(|s| loaded_worker(s, &[s as u64, 10 + s as u64]))
                .collect();
            for _stage in 0..4 {
                let ctx = StageCtx {
                    detectors: vec![&detector, &detector, &detector],
                    slots: vec![0, 0, 0],
                    share_lanes: false,
                    policy: DetectPolicy::infallible(),
                    aggregate: None,
                    cache: None,
                    coalesce: true,
                };
                pool.run_stage(&mut workers, 3, ctx).expect("no panics");
                // Shard order is restored exactly.
                let shards: Vec<u32> = workers.iter().map(ShardWorker::shard).collect();
                assert_eq!(shards, vec![0, 1, 2]);
                for worker in &mut workers {
                    let shard = worker.shard();
                    worker.begin_stage(1, 1);
                    worker.push_frame(0, shard as u64);
                }
            }
            // Chunk buffers were recycled, not re-allocated per stage.
            assert!(pool.spare.len() <= 2);
            drop(pool);
        });
        assert_eq!(live_worker_threads(), 0);
    }

    #[test]
    fn helper_lane_panic_is_typed_and_workers_come_back() {
        let noop = NoopDetector(ObjectClass::from("car"));
        let bomb = BombDetector(ObjectClass::from("car"));
        std::thread::scope(|scope| {
            let mut pool = WorkerPool::spawn(scope, 1);
            // Chunk 0 (inline) uses the noop detector; chunk 1 (helper) gets
            // the bomb via its own worker's lane.
            let mut workers = vec![loaded_worker(0, &[1]), loaded_worker(1, &[2])];
            let ctx = StageCtx {
                detectors: vec![&noop as &dyn Detector, &bomb],
                slots: vec![0, 1],
                share_lanes: false,
                policy: DetectPolicy::infallible(),
                aggregate: None,
                cache: None,
                coalesce: true,
            };
            // Shard 1's frames went to group 0's lane above; re-load shard 1
            // so its lane belongs to the bomb's group instead.
            workers[1] = {
                let mut worker = ShardWorker::new(1);
                worker.begin_stage(2, 1);
                worker.push_frame(1, 2);
                worker
            };
            let err = pool.run_stage(&mut workers, 2, ctx).unwrap_err();
            match err {
                EngineError::WorkerPanicked { message } => {
                    assert!(message.contains("bomb detector"), "message: {message}")
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
            // Both workers were reassembled despite the panic.
            assert_eq!(workers.len(), 2);
            assert_eq!(workers[0].shard(), 0);
            assert_eq!(workers[1].shard(), 1);
            drop(pool);
        });
        assert_eq!(live_worker_threads(), 0);
    }

    #[test]
    fn inline_lane_panic_is_typed_too() {
        let bomb = BombDetector(ObjectClass::from("car"));
        std::thread::scope(|scope| {
            let mut pool = WorkerPool::spawn(scope, 1);
            let mut workers = vec![loaded_worker(0, &[7]), loaded_worker(1, &[8])];
            let ctx = StageCtx {
                detectors: vec![&bomb as &dyn Detector],
                slots: vec![0],
                share_lanes: false,
                policy: DetectPolicy::infallible(),
                aggregate: None,
                cache: None,
                coalesce: true,
            };
            let err = pool.run_stage(&mut workers, 2, ctx).unwrap_err();
            assert!(matches!(err, EngineError::WorkerPanicked { .. }));
            drop(pool);
        });
        assert_eq!(live_worker_threads(), 0);
    }
}
