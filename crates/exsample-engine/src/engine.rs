//! The batched multi-query execution engine.
//!
//! [`QueryEngine`] runs one or many concurrent distinct-object queries over a
//! shared (possibly sharded) video repository in *stages*.  Each stage is a
//! four-phase pipeline:
//!
//! ```text
//!          ┌──────────────────────────────────────────────────────────┐
//!  stage:  │ 1. SCHEDULE the StageScheduler allots each live query a  │
//!          │             pick quota (default: its configured batch)   │
//!          │ 2. PICK     every live query draws ≤ quota frame ids     │
//!          │             from its SamplingPolicy (own RNG stream)     │
//!          │ 3. DETECT   picks are grouped per shared detector and    │
//!          │             routed to the shard owning each frame; one   │
//!          │             shard worker per shard runs the batched      │
//!          │             detector invocations for its frames —        │
//!          │             serially or, under ExecutionMode::Parallel,  │
//!          │             on the run's persistent worker pool          │
//!          │ 4. FAN-OUT  per query, in pick order: discriminator      │
//!          │             observes the frame's detections, the policy  │
//!          │             records the verdict, budgets and             │
//!          │             trajectories advance                         │
//!          └──────────────────────────────────────────────────────────┘
//! ```
//!
//! Stages repeat until every query has a [`StopReason`].  The detector is the
//! dominant cost in real deployments, so phase 3 is where multiplexing pays:
//! when several queries ask for the same frame in the same stage, the engine
//! detects it once and fans the (deterministic) result out to each query's own
//! discriminator.  See the crate docs for the exact coalescing semantics.
//!
//! Determinism: each query owns an RNG stream seeded from its
//! [`QuerySpec::seed`], detectors are pure functions of the frame id, and
//! phase 4 always visits queries in registration order — so per-query outcomes
//! are a function of the query's own spec, never of how stages interleave,
//! which queries share the engine, whether coalescing is enabled, how many
//! shards the DETECT phase is split across, or how many threads execute the
//! shard workers.  A merged sharded run ([`QueryEngine::report_sharded`]) is
//! bitwise-identical to the unsharded run for any shard count and partitioner
//! — the determinism suite pins this for shard counts {1, 2, 3, 7}, and for
//! parallel execution over threads {1, 2, 4} × shards {1, 3, 7}.  Parallelism
//! only reorders *work*: the DETECT phase of each stage is data-independent
//! per shard, the lock-striped cache is probed from the worker threads
//! themselves (membership reads plus commutative per-stripe tallies — probe
//! outcomes depend only on the membership set, which never changes between a
//! stage's probes and its commit), recency and eviction are applied by a
//! serial commit arbitration in fixed worker order, and FAN-OUT always
//! consumes results in registration/pick order — so no observable result,
//! cache accounting included, ever depends on thread scheduling.

use crate::cache::{CacheActivity, CacheConfig, CacheStats, StripedDetectionCache};
use crate::error::EngineError;
use crate::merge::{
    self, BatchStats, DetectorInvocations, ShardQueryTally, ShardReport, ShardedReport,
};
use crate::policy::SamplingPolicy;
use crate::runtime::{self, Dispatch, StageCtx, WorkerPool};
use crate::scheduler::{QueryLoad, RoundRobin, StageScheduler};
use crate::shard::{aggregate_detect, DetectPolicy, ShardRouter, ShardWorker};
use exsample_core::SelectionTelemetry;
use exsample_detect::{DetectError, Detector, FrameDetections, InstanceId};
use exsample_track::{Discriminator, OracleDiscriminator};
use exsample_video::FrameId;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

/// How the DETECT phase's shard workers are executed.
///
/// Serial execution (the default) runs the workers one after another on the
/// calling thread — pick-for-pick the engine's historical behaviour.
/// Parallel execution distributes the workers' detect phases over worker
/// threads — by default the [`crate::runtime`] module's persistent per-run
/// pool (spawned once per run, woken per stage; see [`Dispatch`]), optionally
/// the legacy per-stage scoped spawn;
/// because each worker's probe + detect phase is data-independent per shard
/// (cache probes only read membership and tally commutatively; recency and
/// eviction are applied by the serial commit arbitration in worker order),
/// **every observable result — merged reports, pick sequences, cache state,
/// cost accounting — is bitwise-identical between the two modes** for any
/// thread count.  The determinism suite pins this for threads {1, 2, 4} ×
/// shards {1, 3, 7} × both partitioners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Run shard workers one after another on the calling thread (default).
    #[default]
    Serial,
    /// Run shard workers' detect phases on up to this many worker threads
    /// (the run's persistent pool under the default [`Dispatch::Pooled`],
    /// per-stage scoped threads under [`Dispatch::Scoped`]).
    ///
    /// A thread count exceeding the shard count is clamped to one thread per
    /// shard at stage time (extra threads would have no worker to run);
    /// `Parallel(1)` is serial execution under another name.  A count of zero
    /// is rejected by [`QueryEngine::execution`] as
    /// [`EngineError::InvalidExecution`].
    Parallel(usize),
}

impl ExecutionMode {
    /// The number of threads this mode would actually use for `shards` shard
    /// workers: 1 for serial, otherwise the clamped thread count.
    pub fn effective_threads(&self, shards: usize) -> usize {
        match *self {
            ExecutionMode::Serial => 1,
            ExecutionMode::Parallel(threads) => threads.min(shards).max(1),
        }
    }
}

/// Cross-shard batch aggregation policy for the DETECT phase
/// ([`QueryEngine::aggregation`]).
///
/// Per-shard execution issues one physical `detect_batch` per shard per
/// detector group — splitting a group's frames across shards multiplies the
/// fixed per-invocation cost of a real inference backend.  With aggregation
/// enabled, each stage instead gathers *every* shard's cache misses per
/// logical group into one cross-shard batch stream, flushed at the `max_batch`
/// limit when one is set (one batch per group per stage when unbounded), and
/// scatters the results back to each frame's owning shard in deterministic
/// (shard, frame) order.  Logical outcomes, merged reports, cache state and
/// fault handling are bitwise-identical to per-shard execution for any shard
/// layout; only the *physical* invocation shape changes — fewer, larger
/// batches, which is the whole point ([`ShardedReport::physical_batches`]
/// and the `batched_detect` bench measure the saving under a
/// [`BatchCostModel`]-style cost curve).
///
/// [`BatchCostModel`]: exsample_detect::BatchCostModel
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchAggregation {
    /// Flush limit in frames; `None` aggregates without bound.
    max_batch: Option<usize>,
}

impl BatchAggregation {
    /// Aggregate without a flush limit: one physical batch per detector
    /// group per stage, however many shards contributed (the default).
    pub fn unbounded() -> Self {
        BatchAggregation { max_batch: None }
    }

    /// Flush an aggregated batch once it reaches `limit` frames (modelling a
    /// backend's memory or latency ceiling).
    ///
    /// # Panics
    /// Panics if `limit` is zero.
    pub fn max_batch(limit: usize) -> Self {
        assert!(limit >= 1, "batch aggregation needs a positive flush limit");
        BatchAggregation {
            max_batch: Some(limit),
        }
    }

    /// The flush limit as a plain chunk size (`usize::MAX` when unbounded).
    pub(crate) fn limit(&self) -> usize {
        self.max_batch.unwrap_or(usize::MAX)
    }
}

/// Why a query stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The requested number of distinct results (or ground-truth instances)
    /// was found.
    ResultLimitReached,
    /// The query's frame budget was exhausted before enough results were found.
    FrameBudgetExhausted,
    /// The query's policy ran out of frames to produce.
    RepositoryExhausted,
    /// The query's detector was quarantined: under
    /// [`FailureMode::Quarantine`], a detector whose cumulative failed-frame
    /// count exceeded the failure threshold is disabled for the rest of the
    /// run, and every query bound to it stops with this reason at the next
    /// stage boundary.
    DetectorQuarantined,
}

/// How (and whether) the engine retries a frame whose detect attempt failed.
///
/// Off by default ([`RetryPolicy::none`]): a run with retries disabled is
/// pick-for-pick identical to the pre-fault-tolerance engine.  When enabled,
/// a frame that fails with a transient [`DetectError`] is retried up to the
/// attempt budget; permanent errors are never retried.  Each retry is charged
/// a *deterministic* backoff cost — the `k`-th retry of a frame costs
/// `backoff_cost * 2^(k-1)` cost units — accounted as stage cost
/// ([`StageStats::backoff_cost`]) instead of wall-clock sleeping, so retrying
/// runs stay bitwise-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: u32,
    backoff_cost: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries (the default): a frame gets exactly one recovery attempt
    /// after a failed batch probe, and a transient fault that persists past
    /// it fails the frame.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_cost: 0,
        }
    }

    /// Retry each failing frame until it has been attempted `max_attempts`
    /// times (batch probes excluded), with no backoff cost.
    ///
    /// # Panics
    /// Panics if `max_attempts` is zero.
    pub fn new(max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "retry policy needs at least one attempt");
        RetryPolicy {
            max_attempts,
            backoff_cost: 0,
        }
    }

    /// Charge this many cost units for a frame's first retry (doubling per
    /// further retry — deterministic exponential backoff).
    pub fn backoff_cost(mut self, cost: u64) -> Self {
        self.backoff_cost = cost;
        self
    }

    /// The per-frame attempt budget.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }
}

/// What the engine does when a frame's detect attempts are exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailureMode {
    /// Abort the run with a typed [`EngineError::DetectorFailed`] carrying
    /// the detector class, frame and attempt count (the default).
    #[default]
    FailFast,
    /// Degrade: exclude failed frames from fan-out (no query observes them,
    /// they are never cached) and tally them in the reports
    /// ([`EngineReport::failed_frames`], [`QueryReport::dropped_frames`]).
    DropFrames,
    /// Degrade like [`FailureMode::DropFrames`], and additionally disable any
    /// detector whose cumulative failed-frame count *exceeds* the threshold:
    /// its queries stop with [`StopReason::DetectorQuarantined`] at the next
    /// stage boundary and it is never invoked again this run.
    Quarantine {
        /// Cumulative failed frames a detector may accrue before being
        /// disabled (`0` quarantines on the first failure).
        failure_threshold: u64,
    },
}

/// One point of a recall trajectory: after `frames` detector invocations paid
/// by this query, `found` distinct ground-truth instances had been found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrajectoryPoint {
    /// Frames processed through the detector when the point was recorded.
    pub frames: u64,
    /// Distinct ground-truth instances found at that moment.
    pub found: usize,
}

/// Specification of one query, built builder-style and submitted via
/// [`QueryEngine::push`].
pub struct QuerySpec<'a> {
    label: String,
    policy: Box<dyn SamplingPolicy + 'a>,
    detector: &'a dyn Detector,
    discriminator: Box<dyn Discriminator + 'a>,
    rng: Box<dyn RngCore + 'a>,
    result_limit: Option<usize>,
    true_limit: Option<usize>,
    frame_budget: Option<u64>,
    batch: usize,
}

impl<'a> QuerySpec<'a> {
    /// Create a spec with an [`OracleDiscriminator`], batch size 1, no limits,
    /// and an RNG stream derived from seed 0.
    pub fn new(
        label: impl Into<String>,
        policy: Box<dyn SamplingPolicy + 'a>,
        detector: &'a dyn Detector,
    ) -> Self {
        QuerySpec {
            label: label.into(),
            policy,
            detector,
            discriminator: Box::new(OracleDiscriminator::new()),
            rng: Box::new(StdRng::seed_from_u64(0)),
            result_limit: None,
            true_limit: None,
            frame_budget: None,
            batch: 1,
        }
    }

    /// Replace the discriminator (default: oracle matching).
    pub fn discriminator(mut self, discriminator: Box<dyn Discriminator + 'a>) -> Self {
        self.discriminator = discriminator;
        self
    }

    /// Seed this query's private RNG stream.  Two engine runs whose specs carry
    /// the same seeds produce identical per-query outcomes regardless of what
    /// else runs alongside.
    pub fn seed(mut self, seed: u64) -> Self {
        self.rng = Box::new(StdRng::seed_from_u64(seed));
        self
    }

    /// Use an external RNG instead of a seeded private stream (the legacy
    /// `run_query` wrapper threads its caller's generator through here).
    pub fn rng(mut self, rng: Box<dyn RngCore + 'a>) -> Self {
        self.rng = rng;
        self
    }

    /// Stop once the discriminator reports this many distinct objects.
    pub fn result_limit(mut self, limit: usize) -> Self {
        self.result_limit = Some(limit);
        self
    }

    /// Stop once this many distinct *ground-truth* instances have been found
    /// (how recall-level stop conditions are expressed).
    pub fn true_limit(mut self, limit: usize) -> Self {
        self.true_limit = Some(limit);
        self
    }

    /// Stop after this many detector invocations paid by this query.
    pub fn frame_budget(mut self, budget: u64) -> Self {
        self.frame_budget = Some(budget);
        self
    }

    /// Number of frames the query requests per stage (its detector batch
    /// size).  The [`StageScheduler`] may grant fewer or more.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }
}

/// What one engine stage did, as seen by cost-accounting hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// Stage number (0-based).
    pub stage: u64,
    /// Queries that contributed picks to this stage.
    pub active_queries: usize,
    /// Frames demanded by the queries (what an uncoalesced execution would
    /// have run through detectors).
    pub demanded_frames: u64,
    /// Frames actually run through detectors after coalescing (and, when the
    /// cross-stage cache is enabled, after cache hits).
    pub detector_frames: u64,
    /// Logical batched detector invocations: one per detector group that
    /// needed any detection this stage, regardless of how many shards the
    /// group's frames were split across.
    pub detector_calls: u64,
    /// Per-frame retry attempts issued this stage (0 on fault-free stages).
    pub retries: u64,
    /// Frames whose detect attempts were exhausted this stage (degraded
    /// failure modes only; fail-fast aborts instead of counting).
    pub failed_frames: u64,
    /// Deterministic backoff cost charged for this stage's retries (see
    /// [`RetryPolicy::backoff_cost`]) — cost-accounting hooks should bill it
    /// alongside `detector_frames`.
    pub backoff_cost: u64,
    /// Physical batch-size statistics of this stage's detector invocations
    /// (count / frames / min / mean / max).  Unlike every other field, this
    /// is a *physical* tally: it depends on the shard layout and on whether
    /// cross-shard aggregation is enabled, so cost hooks wanting
    /// layout-invariant numbers should stick to `detector_frames` /
    /// `detector_calls` and treat this as telemetry (or bill it through a
    /// [`BatchCostModel`](exsample_detect::BatchCostModel)).
    pub batches: BatchStats,
    /// Cross-stage cache activity this stage (all zeros when the cache is
    /// off): probe hits/misses plus the evictions and admission rejects this
    /// stage's commits triggered.  Execution-invariant like every logical
    /// field — the determinism matrix pins it across the full thread ×
    /// shard × dispatch × overlap/aggregation grid.
    pub cache: CacheActivity,
}

/// Final report for one query.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// The label the query was submitted under.
    pub label: String,
    /// Name of the query's sampling policy.
    pub policy: String,
    /// Detector invocations paid by this query (demand, not coalesced cost).
    pub frames_processed: u64,
    /// Distinct objects reported by the query's discriminator.
    pub distinct_found: usize,
    /// Distinct ground-truth instances found.
    pub true_found: usize,
    /// The ground-truth instances found, sorted.
    pub found_instances: Vec<InstanceId>,
    /// Recall trajectory: one point per newly found ground-truth instance.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Frames the policy had to scan upfront (proxy-style policies only).
    pub upfront_scan_frames: u64,
    /// Picks of this query dropped from fan-out because their detection
    /// failed (degraded failure modes only; always 0 under fail-fast).
    pub dropped_frames: u64,
    /// Chunk-selection telemetry reported by the query's policy (class-max vs
    /// per-chunk picks and dedup savings; ExSample only, `None` for policies
    /// without a chunk-selection step).
    pub selection: Option<SelectionTelemetry>,
    /// Why the query stopped, or `None` if it is still running (possible only
    /// in reports taken via [`QueryEngine::report`] between manual
    /// [`QueryEngine::run_stage`] calls; after a completed
    /// [`QueryEngine::run`] every query has a reason).
    pub stop_reason: Option<StopReason>,
}

/// Aggregate result of an engine run.
#[derive(Debug, Clone)]
#[must_use = "an engine report carries the run's outcomes and cost accounting"]
pub struct EngineReport {
    /// Per-query reports, in registration order.
    pub outcomes: Vec<QueryReport>,
    /// Number of stages executed.
    pub stages: u64,
    /// Total frames demanded by all queries (uncoalesced detector work).
    pub demanded_frames: u64,
    /// Total frames run through detectors (coalesced detector work).
    pub detector_frames: u64,
    /// Total logical batched detector invocations (see
    /// [`StageStats::detector_calls`]; the physical per-shard count lives in
    /// [`ShardedReport::physical_detector_calls`]).
    pub detector_calls: u64,
    /// Total per-frame retry attempts issued by the run (0 when fault-free).
    pub detect_retries: u64,
    /// Total frames whose detect attempts were exhausted (degraded failure
    /// modes only).
    pub failed_frames: u64,
    /// Total deterministic backoff cost charged for retries.
    pub backoff_cost: u64,
    /// Class labels of detectors quarantined during the run, in registry
    /// (first-seen) order.  Empty unless [`FailureMode::Quarantine`] tripped.
    pub quarantined_detectors: Vec<String>,
    /// Total cross-stage cache activity (all zeros when the cache is off).
    /// Folded from the per-shard worker tallies, so it always equals the sum
    /// of the [`ShardReport`] cache fields — the merge layer cross-checks
    /// this.
    pub cache: CacheActivity,
}

impl EngineReport {
    /// Detector invocations avoided by cross-query coalescing (plus, when
    /// enabled, the cross-stage cache).
    pub fn coalesced_savings(&self) -> u64 {
        self.demanded_frames - self.detector_frames
    }
}

struct QueryState<'a> {
    label: String,
    policy: Box<dyn SamplingPolicy + 'a>,
    detector: &'a dyn Detector,
    discriminator: Box<dyn Discriminator + 'a>,
    rng: Box<dyn RngCore + 'a>,
    result_limit: Option<usize>,
    true_limit: Option<usize>,
    frame_budget: Option<u64>,
    batch: usize,
    frames_processed: u64,
    found_true: HashSet<InstanceId>,
    trajectory: Vec<TrajectoryPoint>,
    stop: Option<StopReason>,
    /// Picks dropped from fan-out because their detection failed.
    dropped_frames: u64,
    /// This stage's picks (reused buffer).
    picks: Vec<FrameId>,
}

impl QueryState<'_> {
    /// The stop conditions, checked in the same order as the legacy per-frame
    /// loop: results first, then budget (so a satisfied query never pays for
    /// one more stage).
    fn stop_condition(&self) -> Option<StopReason> {
        if let Some(limit) = self.result_limit {
            if self.discriminator.distinct_count() >= limit {
                return Some(StopReason::ResultLimitReached);
            }
        }
        if let Some(limit) = self.true_limit {
            if self.found_true.len() >= limit {
                return Some(StopReason::ResultLimitReached);
            }
        }
        if let Some(budget) = self.frame_budget {
            if self.frames_processed >= budget {
                return Some(StopReason::FrameBudgetExhausted);
            }
        }
        None
    }

    fn report(&self) -> QueryReport {
        let mut found_instances: Vec<InstanceId> = self.found_true.iter().copied().collect();
        found_instances.sort();
        QueryReport {
            label: self.label.clone(),
            policy: self.policy.name().to_string(),
            frames_processed: self.frames_processed,
            distinct_found: self.discriminator.distinct_count(),
            true_found: self.found_true.len(),
            found_instances,
            trajectory: self.trajectory.clone(),
            upfront_scan_frames: self.policy.upfront_scan_frames(),
            dropped_frames: self.dropped_frames,
            selection: self.policy.selection_telemetry(),
            stop_reason: self.stop,
        }
    }
}

/// One observed frame's durable facts, collected during a stage's fan-out
/// for the engine's [`StageSink`] (when one is installed).
///
/// Dropped frames produce no observation: a frame the failure policy dropped
/// never updated a policy's beliefs, so there is nothing to persist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageObservation {
    /// Query registration index the observation belongs to.
    pub query: usize,
    /// The observed frame.
    pub frame: FrameId,
    /// The belief update the sampling policy received for this frame
    /// (ExSample's `|d0| - |d1|`; what a durable store must replay to
    /// reconstruct the posterior).
    pub n1_delta: i64,
    /// Ground-truth instances first found on this frame.
    pub new_hits: u64,
    /// The ids of those first-found instances, in discovery order.
    pub new_instances: Vec<InstanceId>,
}

/// A checkpoint hook at the engine's stage-commit boundary.
///
/// When installed via [`QueryEngine::stage_sink`], the engine collects one
/// [`StageObservation`] per observed frame during fan-out and hands the
/// stage's batch to the sink **serially**, after the stage's results are
/// folded — the same serial seam the cache's commit transaction uses, so the
/// batch's observation order is a pure function of (query registration
/// order, pick order) and therefore bitwise-identical across shard counts,
/// thread counts, dispatch runtimes, overlap and aggregation.
///
/// An `Err` aborts the run with [`EngineError::CheckpointFailed`]: a
/// checkpoint that cannot be made durable must stop the run rather than let
/// it silently diverge from its recovery point.  The error is the sink's
/// message; sinks wanting to surface a typed error chain keep it internally
/// and re-chain at their own layer (as `exsample-sim`'s store sink does).
pub trait StageSink {
    /// One committed stage's observations, in deterministic order.
    fn stage_committed(
        &mut self,
        stage: u64,
        observations: &[StageObservation],
    ) -> Result<(), String>;
}

/// One scheduled-but-not-yet-executed stage under overlapped execution: the
/// engine-side staging buffers that SCHEDULE + PICK + ROUTE fill while the
/// previous stage's DETECT is still in flight.
///
/// Everything a stage needs that would otherwise live in the engine's
/// per-stage scratch (group tables, membership, routed lanes, pick shards,
/// per-query picks) is double-buffered here instead, because the previous
/// stage's fan-out still needs *its* copies after the overlapped PICK has
/// run.  The driver ping-pongs two of these; `ShardWorker::adopt_frames`
/// swaps the routed lanes into the workers at load time, so both sides'
/// allocations recycle across stages.
#[derive(Default)]
struct StagedStage<'a> {
    /// 0-based stage number this staging was scheduled as.
    stage: u64,
    /// The stage's logical detector groups, in group order.
    detectors: Vec<&'a dyn Detector>,
    /// Registry slot of each group.
    slots: Vec<u32>,
    /// Query → group map (`usize::MAX` = not picking this stage).
    membership: Vec<usize>,
    /// Routed frames per `[shard][group]`, in (query, pick) arrival order —
    /// the exact lane contents `ShardWorker::push_frame` would have built.
    routed: Vec<Vec<Vec<FrameId>>>,
    /// The shard of every pick, flattened in (query, pick) visitation order.
    pick_shards: Vec<u32>,
    /// Per-query picks (indexed by query registration order).
    picks: Vec<Vec<FrameId>>,
    /// Queries that contributed picks.
    active: usize,
    /// Frames demanded by those picks.
    demanded: u64,
}

/// The batched multi-query execution engine.  See the module docs for the
/// stage pipeline and determinism guarantees.
pub struct QueryEngine<'a> {
    queries: Vec<QueryState<'a>>,
    coalesce: bool,
    /// Per-stage batch allocation policy (default: [`RoundRobin`]).
    scheduler: Box<dyn StageScheduler + 'a>,
    /// Frame → shard routing; [`ShardRouter::single`] (one shard) by default.
    router: ShardRouter,
    /// One worker per shard, executing the DETECT phase for its frames.
    workers: Vec<ShardWorker>,
    /// How the shard workers' detect phases run (serial by default).
    execution: ExecutionMode,
    /// How parallel stages hand work to threads (persistent pool by default).
    dispatch: Dispatch,
    /// Overlap each stage's PICK with the previous stage's DETECT (off by
    /// default; see [`QueryEngine::overlap`]).
    overlap: bool,
    /// Cross-shard batch aggregation for the DETECT phase (off by default;
    /// see [`QueryEngine::aggregation`]).
    aggregation: Option<BatchAggregation>,
    /// The run's worker pool: `Some` only while [`QueryEngine::run_with`] is
    /// executing a pooled parallel run (the threads live in that call's
    /// `std::thread::scope`, and the pool — whose job senders are their
    /// shutdown signal — is dropped before the scope closes on every path).
    pool: Option<WorkerPool<'a>>,
    /// Stages that dispatched work to the pool (cumulative across runs).
    /// Fully cache-warm stages skip dispatch entirely and don't count.
    pooled_dispatches: u64,
    /// Optional cross-stage frame→detections cache (off by default).  The
    /// striped cache is shared with dispatched worker threads per stage via
    /// [`StageCtx`], hence the `Arc`.
    cache: Option<Arc<StripedDetectionCache>>,
    /// Retry policy for failed detect attempts (off by default).
    retry: RetryPolicy,
    /// What happens when a frame's attempts are exhausted (fail-fast by
    /// default).
    failure: FailureMode,
    /// Cumulative failed frames per detector registry slot (drives
    /// [`FailureMode::Quarantine`]).
    slot_failures: Vec<u64>,
    /// Quarantined detector registry slots.
    quarantined: Vec<bool>,
    /// Run totals of the fault telemetry (see [`EngineReport`]).
    detect_retries: u64,
    failed_frames: u64,
    backoff_total: u64,
    /// Registry of distinct detectors seen, in first-seen order.  Membership
    /// is by *fat* pointer (`std::ptr::eq` on `&dyn Detector` compares data
    /// address and vtable), so two distinct zero-sized detector types at the
    /// same address can never share a slot — an identity mismatch can only
    /// cost a missed coalescing/caching opportunity, never correctness.
    detector_slots: Vec<&'a dyn Detector>,
    stages: u64,
    demanded_frames: u64,
    detector_frames: u64,
    detector_calls: u64,
    /// Reused per-stage scratch: the stage's logical detector groups (one
    /// detector + registry slot per group), the query→group membership map,
    /// the per-group detected-frame tally, the scheduler inputs/outputs, and
    /// the detect_batch output buffer.
    stage_detectors: Vec<&'a dyn Detector>,
    stage_slots: Vec<u32>,
    membership: Vec<usize>,
    lane_detected: Vec<u64>,
    loads: Vec<QueryLoad>,
    allocation: Vec<usize>,
    detections_buf: Vec<FrameDetections>,
    /// The shard of every pick of the stage, flattened in (query, pick)
    /// visitation order, so fan-out replays the routing pass's lookups
    /// instead of re-resolving each frame's shard.
    pick_shards: Vec<u32>,
    /// Optional checkpoint hook flushed serially at each stage commit (off
    /// by default; see [`QueryEngine::stage_sink`]).
    sink: Option<Box<dyn StageSink + 'a>>,
    /// Reused per-stage scratch: the fan-out observations handed to `sink`.
    /// Stays empty when no sink is installed.
    stage_observations: Vec<StageObservation>,
}

impl Default for QueryEngine<'_> {
    fn default() -> Self {
        QueryEngine::new()
    }
}

impl<'a> QueryEngine<'a> {
    /// Create an engine with cross-query coalescing enabled, a single shard,
    /// the [`RoundRobin`] scheduler, and no cross-stage cache.
    pub fn new() -> Self {
        QueryEngine {
            queries: Vec::new(),
            coalesce: true,
            scheduler: Box::new(RoundRobin),
            router: ShardRouter::single(),
            workers: vec![ShardWorker::new(0)],
            execution: ExecutionMode::Serial,
            dispatch: Dispatch::Pooled,
            overlap: false,
            aggregation: None,
            pool: None,
            pooled_dispatches: 0,
            cache: None,
            retry: RetryPolicy::none(),
            failure: FailureMode::FailFast,
            slot_failures: Vec::new(),
            quarantined: Vec::new(),
            detect_retries: 0,
            failed_frames: 0,
            backoff_total: 0,
            detector_slots: Vec::new(),
            stages: 0,
            demanded_frames: 0,
            detector_frames: 0,
            detector_calls: 0,
            stage_detectors: Vec::new(),
            stage_slots: Vec::new(),
            membership: Vec::new(),
            lane_detected: Vec::new(),
            loads: Vec::new(),
            allocation: Vec::new(),
            detections_buf: Vec::new(),
            pick_shards: Vec::new(),
            sink: None,
            stage_observations: Vec::new(),
        }
    }

    /// Install a checkpoint hook at the stage-commit boundary (see
    /// [`StageSink`]).  The sink is invoked serially once per stage with the
    /// stage's observations in deterministic (query registration, pick)
    /// order; a sink error aborts the run with
    /// [`EngineError::CheckpointFailed`].  Installing a sink never changes
    /// any query's outcome — only whether the run's belief updates are also
    /// handed to the sink — which the engine's sink test pins down.
    pub fn stage_sink(mut self, sink: Box<dyn StageSink + 'a>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Enable or disable cross-query frame coalescing (enabled by default).
    /// Disabling it never changes any query's outcome — only how much detector
    /// work is paid — which the determinism tests pin down.
    pub fn coalesce(mut self, coalesce: bool) -> Self {
        self.coalesce = coalesce;
        self
    }

    /// Replace the per-stage batch allocation policy (default:
    /// [`RoundRobin`], which reproduces the historical "one batch per live
    /// query per stage" rule exactly).
    pub fn scheduler(mut self, scheduler: Box<dyn StageScheduler + 'a>) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Shard the DETECT phase across `router.shard_count()` workers, routing
    /// every picked frame to the shard owning its chunk.  Query outcomes and
    /// the merged report are bitwise-identical for any router (see the module
    /// docs); only the per-shard breakdown and the physical invocation count
    /// ([`QueryEngine::report_sharded`]) change.
    pub fn sharded(mut self, router: ShardRouter) -> Self {
        self.workers = (0..router.shard_count() as u32)
            .map(ShardWorker::new)
            .collect();
        self.router = router;
        self
    }

    /// Choose how the shard workers' detect phases execute (default:
    /// [`ExecutionMode::Serial`], which is pick-for-pick the historical
    /// behaviour).  Parallel execution never changes any observable result —
    /// see [`ExecutionMode`] — only how many threads pay the detector bill.
    ///
    /// A thread count exceeding the shard count is clamped to one thread per
    /// shard at stage time, so `Parallel(n)` composes safely with any
    /// [`QueryEngine::sharded`] router.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidExecution`] for
    /// [`ExecutionMode::Parallel`] with zero threads.
    pub fn execution(mut self, mode: ExecutionMode) -> Result<Self, EngineError> {
        if let ExecutionMode::Parallel(0) = mode {
            return Err(EngineError::InvalidExecution { threads: 0 });
        }
        self.execution = mode;
        Ok(self)
    }

    /// The engine's execution mode.
    pub fn execution_mode(&self) -> ExecutionMode {
        self.execution
    }

    /// Choose how parallel stages hand DETECT work to threads (default:
    /// [`Dispatch::Pooled`] — a persistent worker pool spawned once per run).
    /// [`Dispatch::Scoped`] restores the legacy per-stage
    /// `std::thread::scope` spawn+join, kept selectable as the dispatch
    /// overhead baseline the `sharded` bench tracks.  Both modes are
    /// bitwise-identical in every observable result; serial execution ignores
    /// the knob entirely.
    pub fn dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// The engine's dispatch mode.
    pub fn dispatch_mode(&self) -> Dispatch {
        self.dispatch
    }

    /// Overlap each stage's SCHEDULE + PICK + ROUTE with the *previous*
    /// stage's DETECT (off by default).
    ///
    /// Within [`QueryEngine::run`] / [`QueryEngine::run_with`], the stage
    /// loop becomes a software pipeline: stage *n*'s detect pass is handed to
    /// the persistent worker pool, the coordinator prepares stage *n + 1*
    /// (scheduling, picking, routing into staging buffers) while the helpers
    /// detect, then rejoins for the commit, tallies and fan-out.  The cache
    /// probe rides inside each dispatched lane (probes only read membership
    /// and tally commutatively), and recency/eviction updates are applied by
    /// the serial arbitration in canonical `(slot, frame)` order at the
    /// commit boundary — so every hit/miss/eviction count is identical in
    /// every execution configuration.  True concurrency needs
    /// [`ExecutionMode::Parallel`] with [`Dispatch::Pooled`]; every other
    /// configuration (serial, scoped dispatch, a 1-thread clamp, fully
    /// cache-warm stages) *emulates* the same canonical order on one thread,
    /// which is what keeps overlapped runs bitwise-identical across shard
    /// counts, thread counts, partitioners and dispatch runtimes.  On a
    /// saturated or single-vCPU host the pool's reclaim pass takes the
    /// dispatched work back after the overlapped PICK — the handoff stays
    /// two mutex operations and never regresses below serial execution.
    ///
    /// The semantic difference from a non-overlapped run: stage *n + 1* is
    /// scheduled *before* stage *n*'s fan-out, so stop conditions, budget
    /// clamps and quarantine checks see state that is one stage stale.  An
    /// overlapped run is therefore **not** pick-for-pick identical to a
    /// non-overlapped one — a query may overshoot its frame budget or result
    /// limit by up to one stage's batch before stopping (budgets stay exact
    /// in *accounting*, only the stop decision lags) — but it is fully
    /// deterministic, and the determinism suite pins overlapped runs across
    /// the whole execution matrix.  Manual [`QueryEngine::run_stage`] calls
    /// have nothing in flight to overlap with and ignore this knob.
    pub fn overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Whether stage-overlapped execution is enabled.
    pub fn overlap_enabled(&self) -> bool {
        self.overlap
    }

    /// Enable cross-shard batch aggregation for the DETECT phase, or disable
    /// it with `None` (the default — per-shard batches, the historical
    /// behaviour).  See [`BatchAggregation`] for the semantics.
    ///
    /// Aggregation serialises each stage's detect pass into one cross-shard
    /// gather/scatter, so there is no per-worker partition left for
    /// [`ExecutionMode::Parallel`] to spread over threads; it runs inline on
    /// the coordinator, except under [`QueryEngine::overlap`] where it is
    /// shipped to a pool helper so the next stage's PICK can run alongside.
    pub fn aggregation(mut self, aggregation: Option<BatchAggregation>) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// The engine's batch aggregation policy (`None` when disabled).
    pub fn aggregation_mode(&self) -> Option<BatchAggregation> {
        self.aggregation
    }

    /// Number of stages, across all of this engine's runs, that dispatched
    /// DETECT work to the persistent worker pool.  Serial stages, scoped
    /// stages and fully cache-warm stages (which skip dispatch entirely — no
    /// channel send, no wake) don't count; the runtime lifecycle tests use
    /// this to pin the warm-skip down.
    pub fn pooled_stage_dispatches(&self) -> u64 {
        self.pooled_dispatches
    }

    /// Enable the bounded cross-stage frame→detections cache with the given
    /// capacity (in frames), using the default lock-stripe count and
    /// admission policy.  Off by default: the cache never changes query
    /// outcomes (detectors are pure functions of the frame id), but warm hits
    /// bypass `detect_batch`, so the detector cost accounting of a cached run
    /// is not comparable to an uncached one.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (use [`QueryEngine::cache_config`] for a
    /// non-panicking, fully-configurable variant).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = Some(Arc::new(StripedDetectionCache::new(CacheConfig::new(
            capacity,
        ))));
        self
    }

    /// Enable the cross-stage cache from a full [`CacheConfig`] (capacity,
    /// lock-stripe count, admission policy).  Stripe count and admission
    /// policy never change *which* entries survive relative to the
    /// determinism contract — stripes affect contention only, and the
    /// admission gate is itself deterministic — but
    /// [`AdmissionPolicy::Frequency`](crate::AdmissionPolicy::Frequency)
    /// changes the admission decisions versus the default LRU, so its
    /// accounting is only comparable between runs sharing the policy.
    ///
    /// # Errors
    /// [`EngineError::InvalidCache`] if the capacity or stripe count is zero.
    pub fn cache_config(mut self, config: CacheConfig) -> Result<Self, EngineError> {
        if config.capacity == 0 || config.stripes == 0 {
            return Err(EngineError::InvalidCache {
                capacity: config.capacity,
                stripes: config.stripes,
            });
        }
        self.cache = Some(Arc::new(StripedDetectionCache::new(config)));
        Ok(self)
    }

    /// Hit/miss/eviction/admission-reject counters of the cross-stage cache,
    /// if enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_deref().map(StripedDetectionCache::stats)
    }

    /// Per-stripe counters of the cross-stage cache, if enabled (contention
    /// diagnostics; the aggregate view is [`QueryEngine::cache_stats`]).
    pub fn cache_stripe_stats(&self) -> Option<Vec<CacheStats>> {
        self.cache
            .as_deref()
            .map(StripedDetectionCache::stripe_stats)
    }

    /// Set the retry policy for failed detect attempts (default:
    /// [`RetryPolicy::none`]).  With retries off, a fault-free run is
    /// pick-for-pick identical to the pre-fault-tolerance engine.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Choose what happens when a frame's detect attempts are exhausted
    /// (default: [`FailureMode::FailFast`]).
    pub fn failure_mode(mut self, failure: FailureMode) -> Self {
        self.failure = failure;
        self
    }

    /// The flattened per-lane fault-handling policy for this engine.
    fn detect_policy(&self) -> DetectPolicy {
        DetectPolicy {
            max_attempts: self.retry.max_attempts,
            backoff_cost: self.retry.backoff_cost,
            fail_fast: matches!(self.failure, FailureMode::FailFast),
        }
    }

    /// Whether the routed stage has any detection work left to dispatch.
    ///
    /// With the cache off, any routed frame is work.  With the cache on,
    /// the probe now runs *inside* the dispatch, so the dispatch decision
    /// peeks at cache membership with the tally-free
    /// [`StripedDetectionCache::contains`] instead: a stage whose every
    /// frame is already resident would dispatch only to discover there is
    /// nothing to detect.  The real probe still runs (inline) and tallies
    /// the hits, so accounting is unchanged by the skip.
    fn stage_has_work(&self, slots: &[crate::cache::DetectorSlot]) -> bool {
        match self.cache.as_deref() {
            None => self.workers.iter().any(ShardWorker::has_frames),
            Some(cache) => !self
                .workers
                .iter()
                .all(|worker| worker.is_warm(slots, cache)),
        }
    }

    /// Number of shards the DETECT phase is split across.
    pub fn shard_count(&self) -> usize {
        self.workers.len()
    }

    /// Register a query; returns its index (reports come back in this order).
    ///
    /// # Errors
    /// Returns [`EngineError::ZeroBatch`] if the spec's batch size is zero.
    pub fn push(&mut self, spec: QuerySpec<'a>) -> Result<usize, EngineError> {
        if spec.batch == 0 {
            return Err(EngineError::ZeroBatch { label: spec.label });
        }
        self.queries.push(QueryState {
            label: spec.label,
            policy: spec.policy,
            detector: spec.detector,
            discriminator: spec.discriminator,
            rng: spec.rng,
            result_limit: spec.result_limit,
            true_limit: spec.true_limit,
            frame_budget: spec.frame_budget,
            batch: spec.batch,
            frames_processed: 0,
            found_true: HashSet::new(),
            trajectory: Vec::new(),
            stop: None,
            dropped_frames: 0,
            picks: Vec::new(),
        });
        Ok(self.queries.len() - 1)
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Total frames demanded by queries so far (uncoalesced detector work).
    pub fn demanded_frames(&self) -> u64 {
        self.demanded_frames
    }

    /// Total frames run through detectors so far (after coalescing).
    pub fn detector_frames(&self) -> u64 {
        self.detector_frames
    }

    /// The registry slot of `detector`, assigned in first-seen order.
    fn detector_slot(slots: &mut Vec<&'a dyn Detector>, detector: &'a dyn Detector) -> u32 {
        match slots.iter().position(|&d| std::ptr::eq(d, detector)) {
            Some(slot) => slot as u32,
            None => {
                slots.push(detector);
                (slots.len() - 1) as u32
            }
        }
    }

    /// Execute one stage (schedule → pick → detect → fan-out) across all live
    /// queries.
    ///
    /// Returns `None` once every query has stopped — after that the engine is
    /// finished and [`QueryEngine::report`] is stable.
    ///
    /// # Panics
    /// Panics if the stage fails — a worker lane panicked, or a fallible
    /// detector failed under [`FailureMode::FailFast`].  Engines running
    /// fallible detectors should call [`QueryEngine::try_run_stage`] (or
    /// [`QueryEngine::run`]) and handle the typed error instead.
    pub fn run_stage(&mut self) -> Option<StageStats> {
        self.try_run_stage()
            .expect("stage execution failed; use try_run_stage with fallible detectors")
    }

    /// [`QueryEngine::run_stage`], surfacing stage failures.
    ///
    /// # Errors
    /// Returns [`EngineError::WorkerPanicked`] if a worker lane's detect pass
    /// panicked during a parallel stage (either dispatch runtime), and
    /// [`EngineError::DetectorFailed`] if a detector exhausted a frame's
    /// attempts under [`FailureMode::FailFast`].  The stage is abandoned
    /// before its cache commit and fan-out: reports and cost accounting are
    /// unspecified after this error, and the run that observed it has already
    /// returned it.
    pub fn try_run_stage(&mut self) -> Result<Option<StageStats>, EngineError> {
        // Phase 1: stop checks and scheduling.  A quarantined detector stops
        // its queries here, at the stage boundary after the quarantine
        // decision — deterministically, regardless of sharding or threading.
        self.loads.clear();
        for q in &mut self.queries {
            q.picks.clear();
            let quarantined = !self.quarantined.is_empty()
                && self
                    .detector_slots
                    .iter()
                    .position(|&d| std::ptr::eq(d, q.detector))
                    .is_some_and(|slot| self.quarantined.get(slot).copied().unwrap_or(false));
            let live = if q.stop.is_some() {
                false
            } else if let Some(reason) = q.stop_condition() {
                q.stop = Some(reason);
                false
            } else if quarantined {
                q.stop = Some(StopReason::DetectorQuarantined);
                false
            } else {
                true
            };
            self.loads.push(QueryLoad {
                live,
                batch: q.batch,
                budget_left: q.frame_budget.map(|b| b - q.frames_processed.min(b)),
            });
        }
        // Cleared defensively so a scheduler that appends without clearing
        // (against the trait contract) cannot replay last stage's quotas.
        self.allocation.clear();
        self.scheduler
            .allocate(self.stages, &self.loads, &mut self.allocation);

        // Phase 2: picks.  The engine clamps every live allocation to
        // `1..=budget_left` so no scheduler can livelock a run or overrun a
        // budget.
        let mut active = 0usize;
        let mut demanded = 0u64;
        for (i, q) in self.queries.iter_mut().enumerate() {
            let load = self.loads[i];
            if !load.live {
                continue;
            }
            let granted = self.allocation.get(i).copied().unwrap_or(load.batch).max(1);
            let want = (granted as u64).min(load.budget_left.unwrap_or(u64::MAX)) as usize;
            q.policy.next_batch_into(q.rng.as_mut(), want, &mut q.picks);
            if q.picks.is_empty() {
                q.stop = Some(StopReason::RepositoryExhausted);
                continue;
            }
            active += 1;
            demanded += q.picks.len() as u64;
        }
        if active == 0 {
            return Ok(None);
        }

        // Observation collection is active only when a sink is installed, so
        // sink-less runs pay nothing.  The scratch vector is moved out of
        // `self` for the stage (the fan-out borrows `self` mutably) and moved
        // back after the flush so its allocation is reused across stages.
        let mut observations = std::mem::take(&mut self.stage_observations);
        let collecting = self.sink.is_some();

        let mut detector_frames = 0u64;
        let mut detector_calls = 0u64;
        let mut stage_retries = 0u64;
        let mut stage_failed = 0u64;
        let mut stage_backoff = 0u64;
        // The fast path skips routing entirely, so it is only taken when the
        // router has no bounds to enforce — a chunking-built router must see
        // every frame to uphold its documented out-of-range panic.  It also
        // skips the miss-gathering pass, so it cannot honour an aggregation
        // flush limit and is bypassed whenever aggregation is on.
        if active == 1
            && self.workers.len() == 1
            && self.cache.is_none()
            && self.aggregation.is_none()
            && !self.router.checks_bounds()
        {
            // Fast path for single-shard stages with a single picking query
            // (the whole run, for a single-query engine — e.g. the per-frame
            // sim runner at batch 1): no grouping, no result map, detections
            // are consumed straight out of the batch buffer in pick order.
            let index = self
                .queries
                .iter()
                .position(|q| !q.picks.is_empty())
                .expect("one query picked this stage");
            let slot = Self::detector_slot(&mut self.detector_slots, self.queries[index].detector);
            let policy = self.detect_policy();
            // The fast path bypasses `begin_stage`, so the worker's stage
            // batch and cache tallies are reset by hand before recording
            // into them (the cache tally stays zero — this path requires
            // the cache to be off).
            self.workers[0].stage_batches = BatchStats::default();
            self.workers[0].stage_cache = CacheActivity::default();
            let q = &mut self.queries[index];
            let picks = std::mem::take(&mut q.picks);
            self.detections_buf.clear();
            match q
                .detector
                .try_detect_batch(&picks, &mut self.detections_buf)
            {
                Ok(()) => {
                    // Fault-free path: identical to the pre-fault-tolerance
                    // engine, one batch probe and straight-line fan-out.
                    detector_calls = 1;
                    detector_frames = picks.len() as u64;
                    for (&frame, detections) in picks.iter().zip(self.detections_buf.drain(..)) {
                        let new_hits = Self::observe_frame(
                            q,
                            index,
                            frame,
                            &detections,
                            collecting,
                            &mut observations,
                        );
                        self.workers[0].record_observation(index, new_hits);
                    }
                    self.workers[0].record_direct(slot, detector_frames, detector_calls);
                    self.workers[0].record_batches(detector_frames, 1);
                }
                Err(_) => {
                    // Per-frame recovery in pick order — the same attempt
                    // semantics as `ShardWorker::detect`, so fast-path runs
                    // stay bitwise-identical to lane-path runs under faults.
                    let max_attempts = policy.max_attempts.max(1);
                    let mut physical_calls = 1u64; // the failed probe
                    let mut fatal: Option<(FrameId, u32, DetectError)> = None;
                    for &frame in &picks {
                        let mut attempts = 0u32;
                        let outcome: Result<FrameDetections, DetectError> = loop {
                            attempts += 1;
                            self.detections_buf.clear();
                            match q.detector.try_detect_batch(
                                std::slice::from_ref(&frame),
                                &mut self.detections_buf,
                            ) {
                                Ok(()) => {
                                    break Ok(self
                                        .detections_buf
                                        .pop()
                                        .expect("one detection set per detected frame"));
                                }
                                Err(err) => {
                                    if !err.is_transient() || attempts >= max_attempts {
                                        break Err(err);
                                    }
                                    stage_retries += 1;
                                    stage_backoff += policy
                                        .backoff_cost
                                        .saturating_mul(1u64 << u64::from(attempts - 1).min(62));
                                }
                            }
                        };
                        physical_calls += u64::from(attempts);
                        match outcome {
                            Ok(detections) => {
                                detector_frames += 1;
                                let new_hits = Self::observe_frame(
                                    q,
                                    index,
                                    frame,
                                    &detections,
                                    collecting,
                                    &mut observations,
                                );
                                self.workers[0].record_observation(index, new_hits);
                            }
                            Err(error) => {
                                stage_failed += 1;
                                if policy.fail_fast {
                                    fatal = Some((frame, attempts + 1, error));
                                    break;
                                }
                                q.dropped_frames += 1;
                                self.workers[0].record_dropped(index);
                            }
                        }
                    }
                    detector_calls = u64::from(detector_frames > 0);
                    self.workers[0].record_direct(slot, detector_frames, physical_calls);
                    // One failed probe over the whole pick batch, then a
                    // single-frame batch per recovery attempt — the same
                    // physical shape `ShardWorker::detect` records.
                    self.workers[0].record_batches(picks.len() as u64, 1);
                    self.workers[0].record_batches(1, physical_calls - 1);
                    self.workers[0].record_direct_faults(
                        slot,
                        stage_retries,
                        stage_backoff,
                        stage_failed,
                    );
                    if let Some((frame, attempts, source)) = fatal {
                        let class = self.detector_slots[slot as usize].class().to_string();
                        return Err(EngineError::DetectorFailed {
                            class,
                            frame,
                            attempts,
                            source,
                        });
                    }
                    if stage_failed > 0 {
                        self.record_slot_failures(slot as usize, stage_failed);
                    }
                }
            }
            let q = &mut self.queries[index];
            q.picks = picks;
            q.picks.clear();
        } else {
            self.run_sharded_stage(
                &mut detector_frames,
                &mut detector_calls,
                &mut stage_retries,
                &mut stage_failed,
                &mut stage_backoff,
                &mut observations,
            )?;
        }
        self.apply_quarantine();

        // Physical batch-size statistics: the fold works for both branches —
        // the sharded path reset every worker's stage tally in `begin_stage`,
        // the fast path reset worker 0's by hand before recording.
        let mut stage_batches = BatchStats::default();
        let mut stage_cache = CacheActivity::default();
        for worker in &self.workers {
            stage_batches.merge(&worker.stage_batches);
            stage_cache.absorb(worker.stage_cache);
        }

        let stats = StageStats {
            stage: self.stages,
            active_queries: active,
            demanded_frames: demanded,
            detector_frames,
            detector_calls,
            retries: stage_retries,
            failed_frames: stage_failed,
            backoff_cost: stage_backoff,
            batches: stage_batches,
            cache: stage_cache,
        };
        // Stage commit: flush the sink at the same serial seam as the cache
        // transaction, before the stage counter advances.  A sink error
        // abandons the stage's stats exactly like a detector failure would.
        let flush = self.flush_stage_sink(self.stages, &mut observations);
        self.stage_observations = observations;
        flush?;
        self.stages += 1;
        self.demanded_frames += demanded;
        self.detector_frames += detector_frames;
        self.detector_calls += detector_calls;
        self.detect_retries += stage_retries;
        self.failed_frames += stage_failed;
        self.backoff_total += stage_backoff;
        Ok(Some(stats))
    }

    /// Hand the stage's observations to the installed sink (if any) and
    /// clear the scratch buffer either way.  Runs serially at the
    /// stage-commit boundary — the same serial seam as the cache transaction
    /// — so a sink never sees concurrent calls, and maps a sink refusal to
    /// [`EngineError::CheckpointFailed`].
    fn flush_stage_sink(
        &mut self,
        stage: u64,
        observations: &mut Vec<StageObservation>,
    ) -> Result<(), EngineError> {
        let result = match self.sink.as_mut() {
            Some(sink) => sink
                .stage_committed(stage, observations)
                .map_err(|message| EngineError::CheckpointFailed { stage, message }),
            None => Ok(()),
        };
        observations.clear();
        result
    }

    /// Accrue `failures` failed frames against registry slot `slot`.
    fn record_slot_failures(&mut self, slot: usize, failures: u64) {
        if self.slot_failures.len() <= slot {
            self.slot_failures.resize(slot + 1, 0);
        }
        self.slot_failures[slot] += failures;
    }

    /// Quarantine every detector whose cumulative failed-frame count exceeds
    /// the threshold (no-op in the other failure modes).  Decided at the
    /// stage boundary from the logical per-detector failure counts, so the
    /// decision is identical across shard counts, thread counts and dispatch
    /// runtimes.
    fn apply_quarantine(&mut self) {
        let FailureMode::Quarantine { failure_threshold } = self.failure else {
            return;
        };
        for (slot, &failures) in self.slot_failures.iter().enumerate() {
            if failures > failure_threshold {
                if self.quarantined.len() <= slot {
                    self.quarantined.resize(slot + 1, false);
                }
                self.quarantined[slot] = true;
            }
        }
    }

    /// One frame's fan-out for one query: discriminator verdict, policy
    /// feedback, budget and trajectory bookkeeping.  Returns the number of
    /// ground-truth instances first found on this frame (the per-shard hit
    /// tally).
    ///
    /// When `collect` is set (a [`StageSink`] is installed) the frame's
    /// belief update is also pushed onto `observations` — at the same code
    /// point that feeds the policy, so the sink sees exactly what the
    /// sampler saw, in the same (registration, pick) order.
    fn observe_frame(
        q: &mut QueryState<'_>,
        query: usize,
        frame: FrameId,
        detections: &FrameDetections,
        collect: bool,
        observations: &mut Vec<StageObservation>,
    ) -> u64 {
        let outcome = q.discriminator.observe(detections);
        q.policy.record(frame, &outcome);
        q.frames_processed += 1;
        let mut new_hits = 0u64;
        let mut new_instances = Vec::new();
        for det in &outcome.new {
            if let Some(id) = det.truth {
                if q.found_true.insert(id) {
                    new_hits += 1;
                    q.trajectory.push(TrajectoryPoint {
                        frames: q.frames_processed,
                        found: q.found_true.len(),
                    });
                    if collect {
                        new_instances.push(id);
                    }
                }
            }
        }
        if collect {
            observations.push(StageObservation {
                query,
                frame,
                n1_delta: outcome.n1_delta(),
                new_hits,
                new_instances,
            });
        }
        new_hits
    }

    /// Phases 3 and 4 of a stage: group demands per detector (the *logical*
    /// groups), route every picked frame to the shard worker owning it, run
    /// each worker's batched detector invocations — serially, on the run's
    /// persistent worker pool, or on per-stage scoped threads, per the
    /// engine's [`ExecutionMode`] and [`Dispatch`] — then fan results back
    /// out per query in registration order.  Group slots, worker lanes, the
    /// membership map and the detection buffer are reused across stages
    /// (allocations amortise to zero in steady state).
    ///
    /// The DETECT phase itself is split in three so that parallelism can
    /// never touch shared state: a serial cache-probe pass over the workers
    /// (in worker order), the data-independent per-worker detect pass (the
    /// only part that runs on threads), and a serial cache-commit pass (in
    /// worker order again).  Serial mode runs the identical three passes on
    /// one thread, which is why all the modes are bitwise-indistinguishable.
    ///
    /// # Errors
    /// Returns [`EngineError::WorkerPanicked`] if a detect lane panicked
    /// under either dispatch runtime, and [`EngineError::DetectorFailed`] if
    /// a detector failed terminally under [`FailureMode::FailFast`]; in both
    /// cases the stage is abandoned before its cache commit and fan-out.
    fn run_sharded_stage(
        &mut self,
        detector_frames: &mut u64,
        detector_calls: &mut u64,
        stage_retries: &mut u64,
        stage_failed: &mut u64,
        stage_backoff: &mut u64,
        observations: &mut Vec<StageObservation>,
    ) -> Result<(), EngineError> {
        // `observations` is the taken-out staging buffer, so the sink itself
        // is untouched during the stage — its presence is the collect flag.
        let collect = self.sink.is_some();
        // Logical grouping: one group per distinct detector among the picking
        // queries (per picking query when coalescing is off).
        self.stage_detectors.clear();
        self.stage_slots.clear();
        self.membership.clear();
        for q in self.queries.iter() {
            if q.picks.is_empty() {
                self.membership.push(usize::MAX);
                continue;
            }
            let group = if self.coalesce {
                self.stage_detectors
                    .iter()
                    .position(|&d| std::ptr::eq(d, q.detector))
            } else {
                None
            };
            let group = group.unwrap_or_else(|| {
                self.stage_detectors.push(q.detector);
                self.stage_slots
                    .push(Self::detector_slot(&mut self.detector_slots, q.detector));
                self.stage_detectors.len() - 1
            });
            self.membership.push(group);
        }
        let groups = self.stage_detectors.len();
        let queries = self.queries.len();
        for worker in &mut self.workers {
            worker.begin_stage(groups, queries);
        }

        // Route picks to the shard owning each frame, remembering each pick's
        // shard so fan-out replays the lookups instead of repeating them.
        self.pick_shards.clear();
        for (q, &group) in self.queries.iter().zip(&self.membership) {
            if group == usize::MAX {
                continue;
            }
            for &frame in &q.picks {
                let shard = self.router.shard_of(frame);
                self.pick_shards.push(shard as u32);
                self.workers[shard].push_frame(group, frame);
            }
        }

        // Per-shard PROBE + DETECT.  The cache probe runs wherever the
        // detect pass runs (inline, or on the dispatched worker threads as
        // the first half of each lane's chunk): probes only read cache
        // membership and tally commutatively, so probe placement can never
        // change accounting — see the cache module docs.  Each worker is
        // probed exactly once per stage.
        //
        // A fully cache-warm stage has nothing to detect; dispatching it
        // would be pure overhead (a thread spawn in scoped mode, a channel
        // wake in pooled mode), so parallel mode falls back to the inline
        // loop unless some worker actually has work.  The warm check uses
        // the tally-free `StripedDetectionCache::contains` — the decision
        // must not perturb the accounting the real probe produces.
        let share_lanes = self.cache.is_some();
        let policy = self.detect_policy();
        let threads = self.execution.effective_threads(self.workers.len());
        let has_work = self.stage_has_work(&self.stage_slots);
        if let Some(aggregation) = self.aggregation {
            // Cross-shard aggregation: one serialised gather/scatter over
            // every worker's misses — a single batch stream per detector
            // group, flushed at the aggregation limit.  There is no
            // per-worker partition left to spread over threads, so outside
            // overlapped runs (which ship this to a pool helper to overlap
            // the next PICK) it runs inline; fully cache-warm stages still
            // skip the detect pass entirely.
            for worker in &mut self.workers {
                worker.probe(&self.stage_slots, self.coalesce, self.cache.as_deref());
            }
            if self.workers.iter().any(ShardWorker::has_misses) {
                aggregate_detect(
                    &mut self.workers,
                    &self.stage_detectors,
                    &self.stage_slots,
                    share_lanes,
                    policy,
                    aggregation.limit(),
                );
            }
        } else if threads <= 1 || !has_work {
            for worker in &mut self.workers {
                worker.probe(&self.stage_slots, self.coalesce, self.cache.as_deref());
                worker.detect(
                    &self.stage_detectors,
                    &self.stage_slots,
                    share_lanes,
                    policy,
                );
            }
        } else if self.pool.is_some() {
            // Pooled dispatch: hand contiguous worker chunks to the run's
            // already-parked helper threads (the coordinator probes and
            // detects the first chunk inline).  Worker lanes and scratch
            // ride along by value and come back with the results, so their
            // allocations are recycled across stages.
            let ctx = StageCtx {
                detectors: self.stage_detectors.clone(),
                slots: self.stage_slots.clone(),
                share_lanes,
                policy,
                aggregate: None,
                cache: self.cache.clone(),
                coalesce: self.coalesce,
            };
            let pool = self.pool.as_mut().expect("pool presence checked above");
            pool.run_stage(&mut self.workers, threads, ctx)?;
            self.pooled_dispatches += 1;
        } else {
            // Legacy scoped dispatch (`Dispatch::Scoped`, or a manual
            // `run_stage` call outside a pooled run): spawn and join fresh
            // scoped threads for this stage.  Each thread runs the same
            // panic-catching lane as the pooled runtime, so a poisoned
            // detector surfaces as a typed error here too instead of
            // unwinding out of the scope.
            let ctx = StageCtx {
                detectors: self.stage_detectors.clone(),
                slots: self.stage_slots.clone(),
                share_lanes,
                policy,
                aggregate: None,
                cache: self.cache.clone(),
                coalesce: self.coalesce,
            };
            let per_thread = self.workers.len().div_ceil(threads);
            let first_panic = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .workers
                    .chunks_mut(per_thread)
                    .map(|chunk| scope.spawn(|| runtime::detect_chunk(chunk, &ctx)))
                    .collect();
                // Join in spawn (= chunk) order so the reported panic is the
                // first lane's, matching the pooled runtime's contract.
                handles
                    .into_iter()
                    .filter_map(|handle| match handle.join() {
                        Ok(outcome) => outcome,
                        Err(payload) => Some(runtime::panic_message(payload)),
                    })
                    .next()
            });
            if let Some(message) = first_panic {
                return Err(EngineError::WorkerPanicked { message });
            }
        }

        // Fail-fast scan, shard order: a worker that hit a terminal detect
        // failure under `FailureMode::FailFast` parked it on its lane; the
        // first one (in shard order) aborts the stage *before* the cache
        // commit, so no result from the doomed stage is ever published.
        let mut fatal = None;
        for worker in &mut self.workers {
            let failure = worker.fatal.take();
            if fatal.is_none() {
                fatal = failure;
            }
        }
        if let Some(failure) = fatal {
            let class = self.detector_slots[failure.slot as usize]
                .class()
                .to_string();
            return Err(EngineError::DetectorFailed {
                class,
                frame: failure.frame,
                attempts: failure.attempts,
                source: failure.error,
            });
        }

        // Arbitration — serial cache commit under one transaction, canonical
        // (slot, frame) order: first every touch (the hits), then every
        // insert (the fresh results), each kind sorted across workers.  The
        // order is a pure function of the frames probed and detected this
        // stage, so the LRU's eviction sequence is identical no matter how
        // many threads probed, which runtime dispatched them, or how the
        // frames were partitioned across shards.
        if let Some(cache) = self.cache.as_deref() {
            crate::shard::arbitrate_cache(&mut self.workers, &self.stage_slots, cache);
        }

        // Fold the per-worker tallies.  Logical calls are counted once per
        // group that needed any detection, regardless of how many shards its
        // frames were split across; the workers keep the physical per-shard
        // tallies.
        self.lane_detected.clear();
        self.lane_detected.resize(groups, 0);
        for worker in &self.workers {
            *detector_frames += worker.stage_detected_frames();
            *stage_retries += worker.stage_retries;
            *stage_backoff += worker.stage_backoff;
            for (total, &detected) in self.lane_detected.iter_mut().zip(&worker.lane_detected) {
                *total += detected;
            }
        }
        *detector_calls += self.lane_detected.iter().filter(|&&n| n > 0).count() as u64;

        // Logical per-detector failure counts: summed per group across the
        // shards (shard-count invariant), then charged to the group's
        // registry slot so quarantine decisions see the run-cumulative view.
        for g in 0..groups {
            let failures: u64 = self.workers.iter().map(|w| w.lane_failed[g]).sum();
            if failures > 0 {
                *stage_failed += failures;
                let slot = self.stage_slots[g] as usize;
                self.record_slot_failures(slot, failures);
            }
        }

        // FAN-OUT in registration order, each query in its own pick order —
        // the same (query, pick) order the routing pass walked, so the
        // recorded shards line up one to one.
        let mut routed = 0usize;
        for i in 0..self.queries.len() {
            let group = self.membership[i];
            if group == usize::MAX {
                continue;
            }
            let q = &mut self.queries[i];
            let picks = std::mem::take(&mut q.picks);
            for &frame in &picks {
                let shard = self.pick_shards[routed] as usize;
                routed += 1;
                let worker = &mut self.workers[shard];
                // A pick with no result was dropped by the failure policy
                // (every terminal failure under `FailFast` aborted the stage
                // above): the query simply never observes the frame, and the
                // degradation is tallied instead.
                match worker.result(group, frame) {
                    Some(detections) => {
                        let new_hits =
                            Self::observe_frame(q, i, frame, detections, collect, observations);
                        worker.record_observation(i, new_hits);
                    }
                    None => {
                        q.dropped_frames += 1;
                        worker.record_dropped(i);
                    }
                }
            }
            // Hand the buffer back so the next stage reuses its allocation.
            q.picks = picks;
            q.picks.clear();
        }
        Ok(())
    }

    /// Run every query to completion, invoking `on_stage` after each stage
    /// (the per-stage cost-accounting hook `exsample-sim` charges its virtual
    /// clock from).
    ///
    /// Under [`ExecutionMode::Parallel`] with [`Dispatch::Pooled`] (the
    /// default dispatch), this is where the persistent worker runtime lives:
    /// one `std::thread::scope` wraps the whole stage loop, `n - 1` helper
    /// threads are spawned into it once, and every parallel stage wakes them
    /// over channels instead of spawning fresh threads.  The pool is dropped
    /// — and with it every helper's shutdown signal sent — before the scope
    /// closes on *every* path out of the loop (completion, a stage error,
    /// even a panicking `on_stage` hook), and the scope then joins the
    /// helpers, so a run can neither leak nor deadlock its threads.
    ///
    /// # Errors
    /// Returns [`EngineError::NoQueries`] if no query was registered, and
    /// [`EngineError::WorkerPanicked`] if a pooled worker lane's detector
    /// panicked (the run stops at the offending stage).
    pub fn run_with<F: FnMut(&StageStats)>(
        &mut self,
        mut on_stage: F,
    ) -> Result<EngineReport, EngineError> {
        if self.queries.is_empty() {
            return Err(EngineError::NoQueries);
        }
        let threads = self.execution.effective_threads(self.workers.len());
        if self.dispatch == Dispatch::Pooled && threads > 1 {
            return std::thread::scope(|scope| {
                self.pool = Some(WorkerPool::spawn(scope, threads - 1));
                // Clears the pool on unwind too: dropping the job senders is
                // what lets the scoped helpers exit, so the scope's implicit
                // join cannot hang even if `on_stage` panics mid-run.
                struct PoolGuard<'g, 'a>(&'g mut QueryEngine<'a>);
                impl Drop for PoolGuard<'_, '_> {
                    fn drop(&mut self) {
                        self.0.pool = None;
                    }
                }
                let guard = PoolGuard(self);
                guard.0.drive(&mut on_stage)
            });
        }
        self.drive(&mut on_stage)
    }

    /// The stage loop shared by pooled and unpooled runs.
    fn drive<F: FnMut(&StageStats)>(
        &mut self,
        on_stage: &mut F,
    ) -> Result<EngineReport, EngineError> {
        if self.overlap {
            return self.drive_overlapped(on_stage);
        }
        while let Some(stats) = self.try_run_stage()? {
            on_stage(&stats);
        }
        Ok(self.report())
    }

    /// SCHEDULE + PICK + ROUTE stage `stage` into `staged` without touching
    /// the shard workers (which may be mid-DETECT on pool helpers).
    ///
    /// Runs against the engine state as of the *previous* stage's fan-out —
    /// under overlap that state is one stage stale (the in-flight stage's
    /// results are not folded in yet), which is exactly the documented
    /// semantic difference of overlapped runs.  Returns `false` when no
    /// query picked: the staged stage is terminal and the run ends once the
    /// in-flight stage completes.
    fn prepare_stage(&mut self, staged: &mut StagedStage<'a>, stage: u64) -> bool {
        staged.stage = stage;
        staged.detectors.clear();
        staged.slots.clear();
        staged.membership.clear();
        staged.pick_shards.clear();
        staged.active = 0;
        staged.demanded = 0;
        let queries = self.queries.len();
        if staged.picks.len() < queries {
            staged.picks.resize_with(queries, Vec::new);
        }
        for picks in &mut staged.picks {
            picks.clear();
        }

        // Phase 1: stop checks and scheduling — the same decisions as
        // `try_run_stage`, just answered from the staging-time state.
        self.loads.clear();
        for q in &mut self.queries {
            let quarantined = !self.quarantined.is_empty()
                && self
                    .detector_slots
                    .iter()
                    .position(|&d| std::ptr::eq(d, q.detector))
                    .is_some_and(|slot| self.quarantined.get(slot).copied().unwrap_or(false));
            let live = if q.stop.is_some() {
                false
            } else if let Some(reason) = q.stop_condition() {
                q.stop = Some(reason);
                false
            } else if quarantined {
                q.stop = Some(StopReason::DetectorQuarantined);
                false
            } else {
                true
            };
            self.loads.push(QueryLoad {
                live,
                batch: q.batch,
                budget_left: q.frame_budget.map(|b| b - q.frames_processed.min(b)),
            });
        }
        self.allocation.clear();
        self.scheduler
            .allocate(stage, &self.loads, &mut self.allocation);

        // Phase 2: picks, drawn into the staging buffers (the queries' own
        // pick buffers may still be feeding the in-flight stage's fan-out).
        for (i, q) in self.queries.iter_mut().enumerate() {
            let load = self.loads[i];
            if !load.live {
                continue;
            }
            let granted = self.allocation.get(i).copied().unwrap_or(load.batch).max(1);
            let want = (granted as u64).min(load.budget_left.unwrap_or(u64::MAX)) as usize;
            let picks = &mut staged.picks[i];
            q.policy.next_batch_into(q.rng.as_mut(), want, picks);
            if picks.is_empty() {
                q.stop = Some(StopReason::RepositoryExhausted);
                continue;
            }
            staged.active += 1;
            staged.demanded += picks.len() as u64;
        }
        if staged.active == 0 {
            return false;
        }

        // Grouping, into the staged tables (same logic as the non-overlapped
        // stage, which groups into the engine scratch instead).
        for i in 0..queries {
            if staged.picks[i].is_empty() {
                staged.membership.push(usize::MAX);
                continue;
            }
            let detector = self.queries[i].detector;
            let group = if self.coalesce {
                staged
                    .detectors
                    .iter()
                    .position(|&d| std::ptr::eq(d, detector))
            } else {
                None
            };
            let group = group.unwrap_or_else(|| {
                staged.detectors.push(detector);
                staged
                    .slots
                    .push(Self::detector_slot(&mut self.detector_slots, detector));
                staged.detectors.len() - 1
            });
            staged.membership.push(group);
        }

        // Routing, into per-[shard][group] staging lanes in the same
        // (query, pick) order the direct `push_frame` pass would use.
        // Sized from the router, not `self.workers`: under pooled overlap the
        // workers are drained into the in-flight dispatch while this runs.
        let shards = self.router.shard_count();
        let groups = staged.detectors.len();
        if staged.routed.len() < shards {
            staged.routed.resize_with(shards, Vec::new);
        }
        for per_shard in &mut staged.routed {
            if per_shard.len() < groups {
                per_shard.resize_with(groups, Vec::new);
            }
            for lane in per_shard.iter_mut() {
                lane.clear();
            }
        }
        for (i, &group) in staged.membership.iter().enumerate() {
            if group == usize::MAX {
                continue;
            }
            for &frame in &staged.picks[i] {
                let shard = self.router.shard_of(frame);
                staged.pick_shards.push(shard as u32);
                staged.routed[shard][group].push(frame);
            }
        }
        true
    }

    /// Load a staged stage into the shard workers: `begin_stage` plus an
    /// allocation-recycling swap of every routed lane.
    fn load_stage(&mut self, staged: &mut StagedStage<'a>) {
        let groups = staged.detectors.len();
        let queries = self.queries.len();
        for (shard, worker) in self.workers.iter_mut().enumerate() {
            worker.begin_stage(groups, queries);
            for group in 0..groups {
                worker.adopt_frames(group, &mut staged.routed[shard][group]);
            }
        }
    }

    /// The overlapped stage loop ([`QueryEngine::overlap`]): a two-deep
    /// software pipeline where stage `n + 1`'s SCHEDULE + PICK + ROUTE runs
    /// while stage `n`'s DETECT is in flight.
    ///
    /// Canonical per-stage order, identical in every execution configuration
    /// (truly concurrent under pooled parallel dispatch, emulated serially
    /// everywhere else):
    /// load `n` → dispatch DETECT `n` (each lane probes then detects) →
    /// prepare `n + 1` → join `n` → fail-fast scan → arbitrate/commit `n` →
    /// tally `n` → fan-out `n` → stats `n`.
    ///
    /// The cache probe rides inside the dispatched lanes, overlapped with
    /// the PICK: probes only read membership and tally commutatively, and
    /// the serial arbitration order (commit `n - 1` < touches `n` < inserts
    /// `n`) is enforced by the commit transaction, so the accounting never
    /// sees the overlap.
    fn drive_overlapped<F: FnMut(&StageStats)>(
        &mut self,
        on_stage: &mut F,
    ) -> Result<EngineReport, EngineError> {
        let mut current = StagedStage::default();
        let mut next = StagedStage::default();
        let mut scheduled = self.stages;
        let mut have_stage = self.prepare_stage(&mut next, scheduled);
        while have_stage {
            scheduled += 1;
            // `next` becomes the executing stage; the old `current`'s
            // (cleared) buffers are recycled for preparing the one after.
            std::mem::swap(&mut current, &mut next);
            self.load_stage(&mut current);

            // PROBE + DETECT n, overlapped with SCHEDULE + PICK + ROUTE n+1.
            // The probe runs inside each dispatched lane (or inline in the
            // emulated arm below); the warm-skip decision peeks at cache
            // membership tally-free, exactly like the non-overlapped loop.
            let share_lanes = self.cache.is_some();
            let policy = self.detect_policy();
            let threads = self.execution.effective_threads(self.workers.len());
            let aggregate = self.aggregation.map(|a| a.limit());
            let has_work = self.stage_has_work(&current.slots);
            if threads > 1 && self.pool.is_some() && has_work {
                let ctx = StageCtx {
                    detectors: current.detectors.clone(),
                    slots: current.slots.clone(),
                    share_lanes,
                    policy,
                    aggregate,
                    cache: self.cache.clone(),
                    coalesce: self.coalesce,
                };
                let pool = self.pool.as_mut().expect("pool presence checked above");
                // An aggregated stage is one serialised gather/scatter:
                // ship the whole worker set to a helper as a single
                // (reclaimable) job so the PICK still overlaps it.
                let dispatch = match aggregate {
                    Some(_) => pool.dispatch_whole(&mut self.workers, ctx),
                    None => pool.dispatch_stage(&mut self.workers, threads, ctx),
                };
                self.pooled_dispatches += 1;
                have_stage = self.prepare_stage(&mut next, scheduled);
                // The reclaim pass inside `join_stage` runs *after* the
                // overlapped PICK: on a saturated host the coordinator
                // takes the queued chunks back here and pays the same two
                // mutex operations as a non-overlapped pooled stage.
                let pool = self.pool.as_mut().expect("pool presence checked above");
                pool.join_stage(&mut self.workers, dispatch)?;
            } else {
                // No helpers to overlap with (serial mode, scoped dispatch,
                // a 1-thread clamp, or a fully cache-warm stage): emulate
                // the canonical order — the next stage is still prepared
                // *before* this stage's results are consumed, so every
                // configuration schedules from the same one-stage-stale
                // state and stays bitwise-identical.
                have_stage = self.prepare_stage(&mut next, scheduled);
                if let Some(max_batch) = aggregate {
                    for worker in &mut self.workers {
                        worker.probe(&current.slots, self.coalesce, self.cache.as_deref());
                    }
                    if self.workers.iter().any(ShardWorker::has_misses) {
                        aggregate_detect(
                            &mut self.workers,
                            &current.detectors,
                            &current.slots,
                            share_lanes,
                            policy,
                            max_batch,
                        );
                    }
                } else if threads <= 1 || !has_work {
                    for worker in &mut self.workers {
                        worker.probe(&current.slots, self.coalesce, self.cache.as_deref());
                        worker.detect(&current.detectors, &current.slots, share_lanes, policy);
                    }
                } else {
                    // Scoped dispatch joins its per-stage threads before
                    // this arm returns, so the PICK cannot ride alongside
                    // them — it ran just above instead.
                    let ctx = StageCtx {
                        detectors: current.detectors.clone(),
                        slots: current.slots.clone(),
                        share_lanes,
                        policy,
                        aggregate: None,
                        cache: self.cache.clone(),
                        coalesce: self.coalesce,
                    };
                    let per_thread = self.workers.len().div_ceil(threads);
                    let first_panic = std::thread::scope(|scope| {
                        let handles: Vec<_> = self
                            .workers
                            .chunks_mut(per_thread)
                            .map(|chunk| scope.spawn(|| runtime::detect_chunk(chunk, &ctx)))
                            .collect();
                        handles
                            .into_iter()
                            .filter_map(|handle| match handle.join() {
                                Ok(outcome) => outcome,
                                Err(payload) => Some(runtime::panic_message(payload)),
                            })
                            .next()
                    });
                    if let Some(message) = first_panic {
                        return Err(EngineError::WorkerPanicked { message });
                    }
                }
            }

            // Fail-fast scan, shard order — same contract as the
            // non-overlapped stage: abort before the cache commit, so no
            // result of the doomed stage is ever published.  (The stage
            // prepared into `next` is simply discarded with the run.)
            let mut fatal = None;
            for worker in &mut self.workers {
                let failure = worker.fatal.take();
                if fatal.is_none() {
                    fatal = failure;
                }
            }
            if let Some(failure) = fatal {
                let class = self.detector_slots[failure.slot as usize]
                    .class()
                    .to_string();
                return Err(EngineError::DetectorFailed {
                    class,
                    frame: failure.frame,
                    attempts: failure.attempts,
                    source: failure.error,
                });
            }

            // COMMIT n — the same serial arbitration as the non-overlapped
            // stage: one transaction, all touches then all inserts, each
            // kind in canonical (slot, frame) order across workers.
            if let Some(cache) = self.cache.as_deref() {
                crate::shard::arbitrate_cache(&mut self.workers, &current.slots, cache);
            }

            // TALLY n (the same folds as the non-overlapped stage loop).
            let groups = current.detectors.len();
            let mut detector_frames = 0u64;
            let mut stage_retries = 0u64;
            let mut stage_backoff = 0u64;
            let mut stage_batches = BatchStats::default();
            let mut stage_cache = CacheActivity::default();
            self.lane_detected.clear();
            self.lane_detected.resize(groups, 0);
            for worker in &self.workers {
                detector_frames += worker.stage_detected_frames();
                stage_retries += worker.stage_retries;
                stage_backoff += worker.stage_backoff;
                stage_batches.merge(&worker.stage_batches);
                stage_cache.absorb(worker.stage_cache);
                for (total, &detected) in self.lane_detected.iter_mut().zip(&worker.lane_detected) {
                    *total += detected;
                }
            }
            let detector_calls = self.lane_detected.iter().filter(|&&n| n > 0).count() as u64;
            let mut stage_failed = 0u64;
            for g in 0..groups {
                let failures: u64 = self.workers.iter().map(|w| w.lane_failed[g]).sum();
                if failures > 0 {
                    stage_failed += failures;
                    let slot = current.slots[g] as usize;
                    self.record_slot_failures(slot, failures);
                }
            }

            // FAN-OUT n in registration order, replaying the staged shards.
            // Observation collection mirrors the non-overlapped path: the
            // scratch vector is taken for the fan-out and handed back after
            // the serial sink flush below.
            let mut observations = std::mem::take(&mut self.stage_observations);
            let collecting = self.sink.is_some();
            let mut routed = 0usize;
            for i in 0..self.queries.len() {
                let group = current.membership[i];
                if group == usize::MAX {
                    continue;
                }
                let q = &mut self.queries[i];
                for &frame in &current.picks[i] {
                    let shard = current.pick_shards[routed] as usize;
                    routed += 1;
                    let worker = &mut self.workers[shard];
                    match worker.result(group, frame) {
                        Some(detections) => {
                            let new_hits = Self::observe_frame(
                                q,
                                i,
                                frame,
                                detections,
                                collecting,
                                &mut observations,
                            );
                            worker.record_observation(i, new_hits);
                        }
                        None => {
                            q.dropped_frames += 1;
                            worker.record_dropped(i);
                        }
                    }
                }
            }
            self.apply_quarantine();

            // STATS n.
            let stats = StageStats {
                stage: current.stage,
                active_queries: current.active,
                demanded_frames: current.demanded,
                detector_frames,
                detector_calls,
                retries: stage_retries,
                failed_frames: stage_failed,
                backoff_cost: stage_backoff,
                batches: stage_batches,
                cache: stage_cache,
            };
            // Stage commit under overlap uses the *logical* stage number the
            // picks were scheduled with, so the sink's record of the run is
            // identical to a non-overlapped run of the same seed.
            let flush = self.flush_stage_sink(current.stage, &mut observations);
            self.stage_observations = observations;
            flush?;
            self.stages += 1;
            self.demanded_frames += current.demanded;
            self.detector_frames += detector_frames;
            self.detector_calls += detector_calls;
            self.detect_retries += stage_retries;
            self.failed_frames += stage_failed;
            self.backoff_total += stage_backoff;
            on_stage(&stats);
        }
        Ok(self.report())
    }

    /// [`QueryEngine::run_with`] without a stage hook.
    ///
    /// # Errors
    /// Returns [`EngineError::NoQueries`] if no query was registered.
    pub fn run(&mut self) -> Result<EngineReport, EngineError> {
        self.run_with(|_| {})
    }

    /// Build the report for the engine's current state.
    #[must_use = "an engine report carries the run's outcomes and cost accounting"]
    pub fn report(&self) -> EngineReport {
        EngineReport {
            outcomes: self.queries.iter().map(QueryState::report).collect(),
            stages: self.stages,
            demanded_frames: self.demanded_frames,
            detector_frames: self.detector_frames,
            detector_calls: self.detector_calls,
            detect_retries: self.detect_retries,
            failed_frames: self.failed_frames,
            backoff_cost: self.backoff_total,
            cache: self
                .workers
                .iter()
                .fold(CacheActivity::default(), |mut total, worker| {
                    total.absorb(worker.cache_tally);
                    total
                }),
            quarantined_detectors: self
                .quarantined
                .iter()
                .enumerate()
                .filter(|&(_, &quarantined)| quarantined)
                .map(|(slot, _)| self.detector_slots[slot].class().to_string())
                .collect(),
        }
    }

    /// Build the merged report with its per-shard breakdown: the global
    /// [`EngineReport`] (recomputed from and cross-checked against the
    /// per-shard tallies by [`merge::merge_reports`]) plus one
    /// [`ShardReport`] per shard.
    #[must_use = "a sharded report carries the run's outcomes and cost accounting"]
    pub fn report_sharded(&self) -> ShardedReport {
        let queries = self.queries.len();
        let shards = self
            .workers
            .iter()
            .map(|worker| ShardReport {
                shard: worker.shard(),
                detector_frames: worker.detector_frames,
                detector_calls: worker.detector_calls,
                retries: worker.retries,
                backoff_cost: worker.backoff,
                failed_frames: worker.failed_frames,
                batches: worker.batches,
                cache: worker.cache_tally,
                per_query: (0..queries)
                    .map(|i| {
                        let tally = worker.per_query.get(i).copied().unwrap_or_default();
                        ShardQueryTally {
                            frames: tally.frames,
                            hits: tally.hits,
                            dropped: tally.dropped,
                        }
                    })
                    .collect(),
                per_detector: worker
                    .per_detector
                    .iter()
                    .enumerate()
                    .filter(|(_, tally)| tally.frames > 0 || tally.calls > 0 || tally.failures > 0)
                    .map(|(slot, tally)| DetectorInvocations {
                        detector: slot as u32,
                        class: self.detector_slots[slot].class().to_string(),
                        frames: tally.frames,
                        calls: tally.calls,
                        failures: tally.failures,
                    })
                    .collect(),
            })
            .collect();
        merge::merge_reports(self.report(), shards)
            .expect("per-shard tallies are maintained in lockstep with the stage loop")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ExSamplePolicy, FrameSamplerPolicy};
    use crate::scheduler::BudgetProportional;
    use exsample_core::ExSampleConfig;
    use exsample_detect::{GroundTruth, ObjectClass, ObjectInstance, PerfectDetector};
    use exsample_video::{Chunking, ChunkingPolicy, ShardSpec, VideoRepository};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn setup(frames: u64, chunks: u32) -> (Chunking, Arc<GroundTruth>, PerfectDetector) {
        let repo = VideoRepository::single_clip(frames);
        let chunking = Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks });
        let mut instances = Vec::new();
        let start0 = frames * 7 / 8;
        let span = (frames / 96).max(2);
        for i in 0..12u64 {
            let start = start0 + i * span;
            let end = (start + span - 1).min(frames - 1);
            if start >= frames {
                break;
            }
            instances.push(ObjectInstance::simple(i, "car", start, end));
        }
        let truth = Arc::new(GroundTruth::from_instances(frames, instances));
        let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));
        (chunking, truth, detector)
    }

    #[test]
    fn single_query_finds_results_and_reports_stop_reason() {
        let (chunking, _truth, detector) = setup(40_000, 8);
        let mut engine = QueryEngine::new();
        let policy = ExSamplePolicy::new(ExSampleConfig::default(), &chunking);
        engine
            .push(
                QuerySpec::new("q", Box::new(policy), &detector)
                    .seed(3)
                    .batch(16)
                    .result_limit(5),
            )
            .unwrap();
        let report = engine.run().unwrap();
        let q = &report.outcomes[0];
        assert_eq!(q.stop_reason, Some(StopReason::ResultLimitReached));
        assert!(q.distinct_found >= 5);
        assert_eq!(q.true_found, q.found_instances.len());
        assert!(report.stages > 0);
        assert_eq!(report.demanded_frames, q.frames_processed);
    }

    #[test]
    fn frame_budget_is_exact_even_with_large_batches() {
        let (chunking, _truth, detector) = setup(40_000, 8);
        let mut engine = QueryEngine::new();
        let policy = ExSamplePolicy::new(ExSampleConfig::default(), &chunking);
        engine
            .push(
                QuerySpec::new("q", Box::new(policy), &detector)
                    .seed(5)
                    .batch(64)
                    .frame_budget(100),
            )
            .unwrap();
        let report = engine.run().unwrap();
        let q = &report.outcomes[0];
        assert_eq!(q.frames_processed, 100);
        assert_eq!(q.stop_reason, Some(StopReason::FrameBudgetExhausted));
    }

    #[test]
    fn repository_exhaustion_stops_queries() {
        let (chunking, _truth, detector) = setup(256, 4);
        let mut engine = QueryEngine::new();
        let policy = ExSamplePolicy::new(ExSampleConfig::default(), &chunking);
        engine
            .push(
                QuerySpec::new("q", Box::new(policy), &detector)
                    .seed(7)
                    .batch(32),
            )
            .unwrap();
        let report = engine.run().unwrap();
        let q = &report.outcomes[0];
        assert_eq!(q.stop_reason, Some(StopReason::RepositoryExhausted));
        assert_eq!(q.frames_processed, 256);
    }

    #[test]
    fn coalescing_reduces_detector_work_but_not_outcomes() {
        // Two identical uniform queries over a tiny repository *must* collide
        // on frames within a stage once enough of the range is covered.
        let (_chunking, _truth, detector) = setup(512, 4);
        let run = |coalesce: bool| {
            let mut engine = QueryEngine::new().coalesce(coalesce);
            for (i, seed) in [11u64, 11, 13].iter().enumerate() {
                engine
                    .push(
                        QuerySpec::new(
                            format!("q{i}"),
                            Box::new(FrameSamplerPolicy::uniform(512)),
                            &detector,
                        )
                        .seed(*seed)
                        .batch(64),
                    )
                    .unwrap();
            }
            engine.run().unwrap()
        };
        let coalesced = run(true);
        let uncoalesced = run(false);
        // Queries 0 and 1 share a seed, so their per-stage picks are identical
        // and coalescing halves that part of the detector bill.
        assert!(coalesced.detector_frames < coalesced.demanded_frames);
        assert_eq!(uncoalesced.detector_frames, uncoalesced.demanded_frames);
        assert_eq!(coalesced.demanded_frames, uncoalesced.demanded_frames);
        assert!(coalesced.coalesced_savings() > 0);
        // Outcomes are bit-identical either way.
        for (a, b) in coalesced.outcomes.iter().zip(&uncoalesced.outcomes) {
            assert_eq!(a.frames_processed, b.frames_processed);
            assert_eq!(a.found_instances, b.found_instances);
            assert_eq!(a.trajectory, b.trajectory);
            assert_eq!(a.stop_reason, b.stop_reason);
        }
    }

    #[test]
    fn zero_batch_and_empty_engine_are_typed_errors() {
        let (chunking, _truth, detector) = setup(256, 4);
        let mut engine = QueryEngine::new();
        let policy = ExSamplePolicy::new(ExSampleConfig::default(), &chunking);
        let err = engine
            .push(QuerySpec::new("bad", Box::new(policy), &detector).batch(0))
            .unwrap_err();
        assert!(matches!(err, EngineError::ZeroBatch { .. }));
        assert!(matches!(engine.run(), Err(EngineError::NoQueries)));
    }

    #[test]
    fn queries_with_different_budgets_finish_independently() {
        let (chunking, _truth, detector) = setup(40_000, 8);
        let mut engine = QueryEngine::new();
        for (label, budget) in [("short", 50u64), ("long", 400)] {
            let policy = ExSamplePolicy::new(ExSampleConfig::default(), &chunking);
            engine
                .push(
                    QuerySpec::new(label, Box::new(policy), &detector)
                        .seed(17)
                        .batch(25)
                        .frame_budget(budget),
                )
                .unwrap();
        }
        let report = engine.run().unwrap();
        assert_eq!(report.outcomes[0].frames_processed, 50);
        assert_eq!(report.outcomes[1].frames_processed, 400);
        // The long query keeps running after the short one stops.
        assert!(report.stages >= 16);
    }

    #[test]
    fn budget_proportional_scheduler_keeps_budgets_exact() {
        let (chunking, _truth, detector) = setup(40_000, 8);
        let run = |scheduler: Box<dyn StageScheduler>| {
            let mut engine = QueryEngine::new().scheduler(scheduler);
            for (label, budget) in [("heavy", 900u64), ("light", 60)] {
                let policy = ExSamplePolicy::new(ExSampleConfig::default(), &chunking);
                engine
                    .push(
                        QuerySpec::new(label, Box::new(policy), &detector)
                            .seed(23)
                            .batch(16)
                            .frame_budget(budget),
                    )
                    .unwrap();
            }
            engine.run().unwrap()
        };
        let proportional = run(Box::new(BudgetProportional));
        // Budgets are consumed exactly regardless of the allocation policy.
        assert_eq!(proportional.outcomes[0].frames_processed, 900);
        assert_eq!(proportional.outcomes[1].frames_processed, 60);
        // The heavy query dominated stage bandwidth, so the run needs fewer
        // stages than round-robin's max(900/16, 60/16) → 57.
        let round_robin = run(Box::new(RoundRobin));
        assert!(
            proportional.stages < round_robin.stages,
            "proportional {} vs round-robin {}",
            proportional.stages,
            round_robin.stages
        );
    }

    #[test]
    fn sharded_stage_loop_matches_unsharded_outcomes() {
        let (chunking, _truth, detector) = setup(8_000, 8);
        let run = |shards: Option<u32>| {
            let mut engine = QueryEngine::new();
            if let Some(shards) = shards {
                let spec = ShardSpec::round_robin(chunking.len(), shards);
                engine = engine.sharded(ShardRouter::new(&chunking, &spec).unwrap());
            }
            for (label, seed) in [("a", 31u64), ("b", 37)] {
                let policy = ExSamplePolicy::new(ExSampleConfig::default(), &chunking);
                engine
                    .push(
                        QuerySpec::new(label, Box::new(policy), &detector)
                            .seed(seed)
                            .batch(16)
                            .frame_budget(300),
                    )
                    .unwrap();
            }
            let _ = engine.run().unwrap();
            engine.report_sharded()
        };
        let unsharded = run(None);
        let sharded = run(Some(4));
        assert_eq!(sharded.shards.len(), 4);
        assert_eq!(unsharded.shards.len(), 1);
        for (a, b) in unsharded
            .report
            .outcomes
            .iter()
            .zip(&sharded.report.outcomes)
        {
            assert_eq!(a.frames_processed, b.frames_processed);
            assert_eq!(a.found_instances, b.found_instances);
            assert_eq!(a.trajectory, b.trajectory);
            assert_eq!(a.stop_reason, b.stop_reason);
        }
        assert_eq!(unsharded.report.stages, sharded.report.stages);
        assert_eq!(
            unsharded.report.detector_frames,
            sharded.report.detector_frames
        );
        assert_eq!(
            unsharded.report.detector_calls,
            sharded.report.detector_calls
        );
        // Splitting one detector group across shards costs extra physical
        // invocations — that is the merge overhead, reported separately.
        assert!(sharded.physical_detector_calls >= sharded.report.detector_calls);
        assert_eq!(
            unsharded.physical_detector_calls,
            unsharded.report.detector_calls
        );
        // Every query's frames partition across the shards.
        for i in 0..2 {
            let routed: u64 = sharded.shards.iter().map(|s| s.per_query[i].frames).sum();
            assert_eq!(routed, sharded.report.outcomes[i].frames_processed);
        }
    }

    #[test]
    fn invalid_execution_mode_is_a_typed_error() {
        let err = QueryEngine::new()
            .execution(ExecutionMode::Parallel(0))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidExecution { threads: 0 }));
        // Valid modes build, and oversubscribed thread counts are clamped to
        // one thread per shard rather than rejected.
        let engine = QueryEngine::new()
            .execution(ExecutionMode::Parallel(64))
            .unwrap();
        assert_eq!(engine.execution_mode(), ExecutionMode::Parallel(64));
        assert_eq!(engine.execution_mode().effective_threads(1), 1);
        assert_eq!(engine.execution_mode().effective_threads(4), 4);
        assert_eq!(ExecutionMode::Serial.effective_threads(8), 1);
        assert_eq!(ExecutionMode::Parallel(2).effective_threads(8), 2);
    }

    #[test]
    fn parallel_execution_matches_serial_bitwise() {
        let (chunking, _truth, detector) = setup(8_000, 9);
        let run = |mode: ExecutionMode| {
            let spec = ShardSpec::round_robin(chunking.len(), 3);
            let mut engine = QueryEngine::new()
                .sharded(ShardRouter::new(&chunking, &spec).unwrap())
                .execution(mode)
                .unwrap();
            for (label, seed) in [("a", 61u64), ("b", 67)] {
                let policy = ExSamplePolicy::new(ExSampleConfig::default(), &chunking);
                engine
                    .push(
                        QuerySpec::new(label, Box::new(policy), &detector)
                            .seed(seed)
                            .batch(16)
                            .frame_budget(400),
                    )
                    .unwrap();
            }
            let _ = engine.run().unwrap();
            engine.report_sharded()
        };
        let serial = run(ExecutionMode::Serial);
        for threads in [1usize, 2, 4, 16] {
            let parallel = run(ExecutionMode::Parallel(threads));
            assert_eq!(
                parallel.physical_detector_calls, serial.physical_detector_calls,
                "{threads} threads"
            );
            assert_eq!(parallel.shards, serial.shards, "{threads} threads");
            for (a, b) in parallel.report.outcomes.iter().zip(&serial.report.outcomes) {
                assert_eq!(a.frames_processed, b.frames_processed);
                assert_eq!(a.found_instances, b.found_instances);
                assert_eq!(a.trajectory, b.trajectory);
                assert_eq!(a.stop_reason, b.stop_reason);
            }
            assert_eq!(parallel.report.stages, serial.report.stages);
            assert_eq!(
                parallel.report.detector_frames,
                serial.report.detector_frames
            );
            assert_eq!(parallel.report.detector_calls, serial.report.detector_calls);
        }
    }

    #[test]
    fn parallel_execution_with_cache_matches_serial_accounting() {
        // The cache is probed and committed serially in worker order in both
        // modes, so even the hit/miss accounting — not just query outcomes —
        // is identical under parallel execution.
        let (chunking, _truth, detector) = setup(2_000, 6);
        let run = |mode: ExecutionMode| {
            let spec = ShardSpec::round_robin(chunking.len(), 3);
            let mut engine = QueryEngine::new()
                .sharded(ShardRouter::new(&chunking, &spec).unwrap())
                .execution(mode)
                .unwrap()
                .cache_capacity(64);
            for (label, seed) in [("a", 71u64), ("b", 71), ("c", 73)] {
                engine
                    .push(
                        QuerySpec::new(
                            label,
                            Box::new(FrameSamplerPolicy::uniform(2_000)),
                            &detector,
                        )
                        .seed(seed)
                        .batch(32)
                        .frame_budget(500),
                    )
                    .unwrap();
            }
            let _ = engine.run().unwrap();
            let stats = engine.cache_stats().expect("cache enabled");
            (engine.report_sharded(), stats)
        };
        let (serial, serial_stats) = run(ExecutionMode::Serial);
        let (parallel, parallel_stats) = run(ExecutionMode::Parallel(3));
        assert_eq!(parallel_stats, serial_stats, "cache accounting");
        assert_eq!(
            parallel.report.detector_frames,
            serial.report.detector_frames
        );
        assert_eq!(
            parallel.physical_detector_calls,
            serial.physical_detector_calls
        );
        for (a, b) in parallel.report.outcomes.iter().zip(&serial.report.outcomes) {
            assert_eq!(a.found_instances, b.found_instances);
            assert_eq!(a.trajectory, b.trajectory);
        }
        assert!(serial_stats.hits > 0, "setup exercises the cache");
    }

    /// A detector that counts its batched invocations (atomically — the
    /// `Detector` trait requires `Sync`, and parallel engines really do call
    /// it from several worker threads).
    struct CountingDetector {
        inner: PerfectDetector,
        batch_calls: AtomicU64,
    }

    impl Detector for CountingDetector {
        fn detect(&self, frame: FrameId) -> FrameDetections {
            self.inner.detect(frame)
        }

        fn detect_batch(&self, frames: &[FrameId], out: &mut Vec<FrameDetections>) {
            self.batch_calls.fetch_add(1, Ordering::Relaxed);
            self.inner.detect_batch(frames, out);
        }

        fn class(&self) -> &ObjectClass {
            self.inner.class()
        }
    }

    #[test]
    fn uncoalesced_same_detector_lanes_share_through_the_cache_within_a_stage() {
        // With coalescing off, two queries sharing a detector get separate
        // lanes — but with the cache enabled, a (detector, frame) pair must
        // still be detected at most once per shard per stage, in serial and
        // parallel mode alike.  The dedupe now happens at *probe* time: a
        // later same-detector lane joins the earlier lane's probe outcome
        // (sharing its hit or riding its miss) instead of probing again, so
        // the cache tallies each (detector, frame) once per stage too —
        // historically both lanes probed before either detected and the
        // second lane's miss double-counted.
        let (_chunking, truth, _detector) = setup(256, 4);
        let detector = CountingDetector {
            inner: PerfectDetector::new(truth, ObjectClass::from("car")),
            batch_calls: AtomicU64::new(0),
        };
        let run = |mode: ExecutionMode| {
            let mut engine = QueryEngine::new()
                .coalesce(false)
                .execution(mode)
                .unwrap()
                .cache_capacity(1_024);
            // Same seed: the two queries pick identical frames every stage.
            for label in ["twin-a", "twin-b"] {
                engine
                    .push(
                        QuerySpec::new(
                            label,
                            Box::new(FrameSamplerPolicy::uniform(256)),
                            &detector,
                        )
                        .seed(47)
                        .batch(32),
                    )
                    .unwrap();
            }
            let report = engine.run().unwrap();
            let stats = engine.cache_stats().expect("cache enabled");
            (report, stats)
        };
        let (serial, serial_stats) = run(ExecutionMode::Serial);
        assert_eq!(serial.demanded_frames, 512);
        assert_eq!(
            serial.detector_frames, 256,
            "every frame must be detected exactly once despite coalescing off"
        );
        // Probe-time dedupe: the twin lane joins the first lane's probe, so
        // the cache sees each (detector, frame) exactly once — no
        // double-counted misses, and the joined lookups are not fake hits.
        assert_eq!(serial_stats.misses, 256, "one tallied miss per frame");
        assert_eq!(serial_stats.hits, serial.cache.hits);
        assert_eq!(serial.cache.misses, 256);
        let serial_calls = detector.batch_calls.load(Ordering::Relaxed);
        assert_eq!(serial_calls, serial.stages, "one lane per stage detects");
        let (parallel, parallel_stats) = run(ExecutionMode::Parallel(2));
        assert_eq!(parallel.detector_frames, serial.detector_frames);
        assert_eq!(parallel_stats, serial_stats, "cache accounting");
        assert_eq!(
            detector.batch_calls.load(Ordering::Relaxed),
            serial_calls * 2,
            "parallel run issues the same invocations again"
        );
        for (a, b) in parallel.outcomes.iter().zip(&serial.outcomes) {
            assert_eq!(a.found_instances, b.found_instances);
            assert_eq!(a.trajectory, b.trajectory);
        }
    }

    #[test]
    fn warm_cache_requery_issues_zero_detector_calls() {
        let (_chunking, truth, _detector) = setup(256, 4);
        let detector = CountingDetector {
            inner: PerfectDetector::new(truth, ObjectClass::from("car")),
            batch_calls: AtomicU64::new(0),
        };
        let mut engine = QueryEngine::new().cache_capacity(1_024);
        engine
            .push(
                QuerySpec::new(
                    "cold",
                    Box::new(FrameSamplerPolicy::uniform(256)),
                    &detector,
                )
                .seed(41)
                .batch(32),
            )
            .unwrap();
        let cold = engine.run().unwrap();
        assert_eq!(cold.outcomes[0].frames_processed, 256);
        let cold_calls = detector.batch_calls.load(Ordering::Relaxed);
        let cold_frames = engine.detector_frames();
        assert!(cold_calls > 0);

        // A warm re-query over the same repository: every frame is cached, so
        // not a single new detect_batch invocation is issued.
        engine
            .push(
                QuerySpec::new(
                    "warm",
                    Box::new(FrameSamplerPolicy::uniform(256)),
                    &detector,
                )
                .seed(43)
                .batch(32),
            )
            .unwrap();
        let warm = engine.run().unwrap();
        assert_eq!(warm.outcomes[1].frames_processed, 256);
        assert_eq!(
            detector.batch_calls.load(Ordering::Relaxed),
            cold_calls,
            "warm re-query must be served entirely from the cache"
        );
        assert_eq!(engine.detector_frames(), cold_frames);
        let stats = engine.cache_stats().expect("cache enabled");
        assert!(stats.hits >= 256);
        // Outcomes are identical to an uncached run of the same query.
        let truth_check = {
            let mut uncached = QueryEngine::new();
            uncached
                .push(
                    QuerySpec::new(
                        "warm",
                        Box::new(FrameSamplerPolicy::uniform(256)),
                        &detector,
                    )
                    .seed(43)
                    .batch(32),
                )
                .unwrap();
            uncached.run().unwrap()
        };
        assert_eq!(
            warm.outcomes[1].found_instances,
            truth_check.outcomes[0].found_instances
        );
        assert_eq!(
            warm.outcomes[1].trajectory,
            truth_check.outcomes[0].trajectory
        );
    }
}
