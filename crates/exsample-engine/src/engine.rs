//! The batched multi-query execution engine.
//!
//! [`QueryEngine`] runs one or many concurrent distinct-object queries over a
//! shared video repository in *stages*.  Each stage is a three-phase pipeline:
//!
//! ```text
//!          ┌────────────────────────────────────────────────────────┐
//!  stage:  │ 1. PICK     every live query draws ≤ batch frame ids   │
//!          │             from its SamplingPolicy (own RNG stream)   │
//!          │ 2. DETECT   frame ids are coalesced across queries     │
//!          │             sharing a detector (sorted, deduplicated)  │
//!          │             and run through one batched invocation     │
//!          │ 3. FAN-OUT  per query, in pick order: discriminator    │
//!          │             observes the frame's detections, the       │
//!          │             policy records the verdict, budgets and    │
//!          │             trajectories advance                       │
//!          └────────────────────────────────────────────────────────┘
//! ```
//!
//! Stages repeat until every query has a [`StopReason`].  The detector is the
//! dominant cost in real deployments, so phase 2 is where multiplexing pays:
//! when several queries ask for the same frame in the same stage, the engine
//! detects it once and fans the (deterministic) result out to each query's own
//! discriminator.  See the crate docs for the exact coalescing semantics.
//!
//! Determinism: each query owns an RNG stream seeded from its
//! [`QuerySpec::seed`], detectors are pure functions of the frame id, and
//! phase 3 always visits queries in registration order — so per-query outcomes
//! are a function of the query's own spec, never of how stages interleave,
//! which queries share the engine, or whether coalescing is enabled.

use crate::error::EngineError;
use crate::policy::SamplingPolicy;
use exsample_detect::{Detector, FrameDetections, InstanceId};
use exsample_track::{Discriminator, OracleDiscriminator};
use exsample_video::FrameId;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Why a query stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The requested number of distinct results (or ground-truth instances)
    /// was found.
    ResultLimitReached,
    /// The query's frame budget was exhausted before enough results were found.
    FrameBudgetExhausted,
    /// The query's policy ran out of frames to produce.
    RepositoryExhausted,
}

/// One point of a recall trajectory: after `frames` detector invocations paid
/// by this query, `found` distinct ground-truth instances had been found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrajectoryPoint {
    /// Frames processed through the detector when the point was recorded.
    pub frames: u64,
    /// Distinct ground-truth instances found at that moment.
    pub found: usize,
}

/// Specification of one query, built builder-style and submitted via
/// [`QueryEngine::push`].
pub struct QuerySpec<'a> {
    label: String,
    policy: Box<dyn SamplingPolicy + 'a>,
    detector: &'a dyn Detector,
    discriminator: Box<dyn Discriminator + 'a>,
    rng: Box<dyn RngCore + 'a>,
    result_limit: Option<usize>,
    true_limit: Option<usize>,
    frame_budget: Option<u64>,
    batch: usize,
}

impl<'a> QuerySpec<'a> {
    /// Create a spec with an [`OracleDiscriminator`], batch size 1, no limits,
    /// and an RNG stream derived from seed 0.
    pub fn new(
        label: impl Into<String>,
        policy: Box<dyn SamplingPolicy + 'a>,
        detector: &'a dyn Detector,
    ) -> Self {
        QuerySpec {
            label: label.into(),
            policy,
            detector,
            discriminator: Box::new(OracleDiscriminator::new()),
            rng: Box::new(StdRng::seed_from_u64(0)),
            result_limit: None,
            true_limit: None,
            frame_budget: None,
            batch: 1,
        }
    }

    /// Replace the discriminator (default: oracle matching).
    pub fn discriminator(mut self, discriminator: Box<dyn Discriminator + 'a>) -> Self {
        self.discriminator = discriminator;
        self
    }

    /// Seed this query's private RNG stream.  Two engine runs whose specs carry
    /// the same seeds produce identical per-query outcomes regardless of what
    /// else runs alongside.
    pub fn seed(mut self, seed: u64) -> Self {
        self.rng = Box::new(StdRng::seed_from_u64(seed));
        self
    }

    /// Use an external RNG instead of a seeded private stream (the legacy
    /// `run_query` wrapper threads its caller's generator through here).
    pub fn rng(mut self, rng: Box<dyn RngCore + 'a>) -> Self {
        self.rng = rng;
        self
    }

    /// Stop once the discriminator reports this many distinct objects.
    pub fn result_limit(mut self, limit: usize) -> Self {
        self.result_limit = Some(limit);
        self
    }

    /// Stop once this many distinct *ground-truth* instances have been found
    /// (how recall-level stop conditions are expressed).
    pub fn true_limit(mut self, limit: usize) -> Self {
        self.true_limit = Some(limit);
        self
    }

    /// Stop after this many detector invocations paid by this query.
    pub fn frame_budget(mut self, budget: u64) -> Self {
        self.frame_budget = Some(budget);
        self
    }

    /// Number of frames the query requests per stage (its detector batch size).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }
}

/// What one engine stage did, as seen by cost-accounting hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// Stage number (0-based).
    pub stage: u64,
    /// Queries that contributed picks to this stage.
    pub active_queries: usize,
    /// Frames demanded by the queries (what an uncoalesced execution would
    /// have run through detectors).
    pub demanded_frames: u64,
    /// Frames actually run through detectors after coalescing.
    pub detector_frames: u64,
    /// Batched detector invocations issued.
    pub detector_calls: u64,
}

/// Final report for one query.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// The label the query was submitted under.
    pub label: String,
    /// Name of the query's sampling policy.
    pub policy: String,
    /// Detector invocations paid by this query (demand, not coalesced cost).
    pub frames_processed: u64,
    /// Distinct objects reported by the query's discriminator.
    pub distinct_found: usize,
    /// Distinct ground-truth instances found.
    pub true_found: usize,
    /// The ground-truth instances found, sorted.
    pub found_instances: Vec<InstanceId>,
    /// Recall trajectory: one point per newly found ground-truth instance.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Frames the policy had to scan upfront (proxy-style policies only).
    pub upfront_scan_frames: u64,
    /// Why the query stopped, or `None` if it is still running (possible only
    /// in reports taken via [`QueryEngine::report`] between manual
    /// [`QueryEngine::run_stage`] calls; after a completed
    /// [`QueryEngine::run`] every query has a reason).
    pub stop_reason: Option<StopReason>,
}

/// Aggregate result of an engine run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Per-query reports, in registration order.
    pub outcomes: Vec<QueryReport>,
    /// Number of stages executed.
    pub stages: u64,
    /// Total frames demanded by all queries (uncoalesced detector work).
    pub demanded_frames: u64,
    /// Total frames run through detectors (coalesced detector work).
    pub detector_frames: u64,
    /// Total batched detector invocations.
    pub detector_calls: u64,
}

impl EngineReport {
    /// Detector invocations avoided by cross-query coalescing.
    pub fn coalesced_savings(&self) -> u64 {
        self.demanded_frames - self.detector_frames
    }
}

struct QueryState<'a> {
    label: String,
    policy: Box<dyn SamplingPolicy + 'a>,
    detector: &'a dyn Detector,
    discriminator: Box<dyn Discriminator + 'a>,
    rng: Box<dyn RngCore + 'a>,
    result_limit: Option<usize>,
    true_limit: Option<usize>,
    frame_budget: Option<u64>,
    batch: usize,
    frames_processed: u64,
    found_true: HashSet<InstanceId>,
    trajectory: Vec<TrajectoryPoint>,
    stop: Option<StopReason>,
    /// This stage's picks (reused buffer).
    picks: Vec<FrameId>,
}

impl QueryState<'_> {
    /// The stop conditions, checked in the same order as the legacy per-frame
    /// loop: results first, then budget (so a satisfied query never pays for
    /// one more stage).
    fn stop_condition(&self) -> Option<StopReason> {
        if let Some(limit) = self.result_limit {
            if self.discriminator.distinct_count() >= limit {
                return Some(StopReason::ResultLimitReached);
            }
        }
        if let Some(limit) = self.true_limit {
            if self.found_true.len() >= limit {
                return Some(StopReason::ResultLimitReached);
            }
        }
        if let Some(budget) = self.frame_budget {
            if self.frames_processed >= budget {
                return Some(StopReason::FrameBudgetExhausted);
            }
        }
        None
    }

    fn report(&self) -> QueryReport {
        let mut found_instances: Vec<InstanceId> = self.found_true.iter().copied().collect();
        found_instances.sort();
        QueryReport {
            label: self.label.clone(),
            policy: self.policy.name().to_string(),
            frames_processed: self.frames_processed,
            distinct_found: self.discriminator.distinct_count(),
            true_found: self.found_true.len(),
            found_instances,
            trajectory: self.trajectory.clone(),
            upfront_scan_frames: self.policy.upfront_scan_frames(),
            stop_reason: self.stop,
        }
    }
}

/// One coalescing unit of a stage: the frames demanded from one detector.
struct DetectorGroup {
    /// Index of the first member query; the group's detector identity is that
    /// query's detector reference.  Membership tests compare detector
    /// references as *fat* pointers (`std::ptr::eq` on `&dyn Detector`
    /// compares data address and vtable), so two distinct zero-sized detector
    /// types at the same address can never be merged — a vtable mismatch can
    /// only cost a missed coalescing opportunity, never correctness.
    owner: usize,
    frames: Vec<FrameId>,
    results: HashMap<FrameId, FrameDetections>,
}

/// The batched multi-query execution engine.  See the module docs for the
/// stage pipeline and determinism guarantees.
pub struct QueryEngine<'a> {
    queries: Vec<QueryState<'a>>,
    coalesce: bool,
    stages: u64,
    demanded_frames: u64,
    detector_frames: u64,
    detector_calls: u64,
    /// Reused per-stage scratch: detector groups (only the first `live_groups`
    /// entries are meaningful in a stage; dead entries keep their allocations
    /// for reuse), the query→group membership map, and the detect_batch
    /// output buffer.
    groups: Vec<DetectorGroup>,
    live_groups: usize,
    membership: Vec<usize>,
    detections_buf: Vec<FrameDetections>,
}

impl Default for QueryEngine<'_> {
    fn default() -> Self {
        QueryEngine::new()
    }
}

impl<'a> QueryEngine<'a> {
    /// Create an engine with cross-query coalescing enabled.
    pub fn new() -> Self {
        QueryEngine {
            queries: Vec::new(),
            coalesce: true,
            stages: 0,
            demanded_frames: 0,
            detector_frames: 0,
            detector_calls: 0,
            groups: Vec::new(),
            live_groups: 0,
            membership: Vec::new(),
            detections_buf: Vec::new(),
        }
    }

    /// Enable or disable cross-query frame coalescing (enabled by default).
    /// Disabling it never changes any query's outcome — only how much detector
    /// work is paid — which the determinism tests pin down.
    pub fn coalesce(mut self, coalesce: bool) -> Self {
        self.coalesce = coalesce;
        self
    }

    /// Register a query; returns its index (reports come back in this order).
    ///
    /// # Errors
    /// Returns [`EngineError::ZeroBatch`] if the spec's batch size is zero.
    pub fn push(&mut self, spec: QuerySpec<'a>) -> Result<usize, EngineError> {
        if spec.batch == 0 {
            return Err(EngineError::ZeroBatch { label: spec.label });
        }
        self.queries.push(QueryState {
            label: spec.label,
            policy: spec.policy,
            detector: spec.detector,
            discriminator: spec.discriminator,
            rng: spec.rng,
            result_limit: spec.result_limit,
            true_limit: spec.true_limit,
            frame_budget: spec.frame_budget,
            batch: spec.batch,
            frames_processed: 0,
            found_true: HashSet::new(),
            trajectory: Vec::new(),
            stop: None,
            picks: Vec::new(),
        });
        Ok(self.queries.len() - 1)
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Total frames demanded by queries so far (uncoalesced detector work).
    pub fn demanded_frames(&self) -> u64 {
        self.demanded_frames
    }

    /// Total frames run through detectors so far (after coalescing).
    pub fn detector_frames(&self) -> u64 {
        self.detector_frames
    }

    /// Execute one stage (pick → detect → fan-out) across all live queries.
    ///
    /// Returns `None` once every query has stopped — after that the engine is
    /// finished and [`QueryEngine::report`] is stable.
    pub fn run_stage(&mut self) -> Option<StageStats> {
        // Phase 1: stop checks and picks.
        let mut active = 0usize;
        let mut demanded = 0u64;
        for q in &mut self.queries {
            q.picks.clear();
            if q.stop.is_some() {
                continue;
            }
            if let Some(reason) = q.stop_condition() {
                q.stop = Some(reason);
                continue;
            }
            let budget_left = q
                .frame_budget
                .map_or(u64::MAX, |b| b - q.frames_processed.min(b));
            let want = (q.batch as u64).min(budget_left) as usize;
            q.policy.next_batch_into(q.rng.as_mut(), want, &mut q.picks);
            if q.picks.is_empty() {
                q.stop = Some(StopReason::RepositoryExhausted);
                continue;
            }
            active += 1;
            demanded += q.picks.len() as u64;
        }
        if active == 0 {
            return None;
        }

        let mut detector_frames = 0u64;
        let mut detector_calls = 0u64;
        if active == 1 {
            // Fast path for stages with a single picking query (the whole run,
            // for a single-query engine — e.g. the per-frame sim runner at
            // batch 1): no grouping, no result map, detections are consumed
            // straight out of the batch buffer in pick order.
            let q = self
                .queries
                .iter_mut()
                .find(|q| !q.picks.is_empty())
                .expect("one query picked this stage");
            let picks = std::mem::take(&mut q.picks);
            self.detections_buf.clear();
            q.detector.detect_batch(&picks, &mut self.detections_buf);
            detector_calls = 1;
            detector_frames = picks.len() as u64;
            for (&frame, detections) in picks.iter().zip(self.detections_buf.drain(..)) {
                Self::observe_frame(q, frame, &detections);
            }
            q.picks = picks;
            q.picks.clear();
        } else {
            self.run_grouped_stage(&mut detector_frames, &mut detector_calls);
        }

        let stats = StageStats {
            stage: self.stages,
            active_queries: active,
            demanded_frames: demanded,
            detector_frames,
            detector_calls,
        };
        self.stages += 1;
        self.demanded_frames += demanded;
        self.detector_frames += detector_frames;
        self.detector_calls += detector_calls;
        Some(stats)
    }

    /// One frame's fan-out for one query: discriminator verdict, policy
    /// feedback, budget and trajectory bookkeeping.
    fn observe_frame(q: &mut QueryState<'_>, frame: FrameId, detections: &FrameDetections) {
        let outcome = q.discriminator.observe(detections);
        q.policy.record(frame, &outcome);
        q.frames_processed += 1;
        for det in &outcome.new {
            if let Some(id) = det.truth {
                if q.found_true.insert(id) {
                    q.trajectory.push(TrajectoryPoint {
                        frames: q.frames_processed,
                        found: q.found_true.len(),
                    });
                }
            }
        }
    }

    /// Phases 2 and 3 of a stage with several picking queries: group demands
    /// per detector, deduplicate when coalescing, issue one batched detector
    /// invocation per group, then fan results back out per query in
    /// registration order.  Group slots, the membership map and the detection
    /// buffer are reused across stages (allocations amortise to zero in
    /// steady state).
    fn run_grouped_stage(&mut self, detector_frames: &mut u64, detector_calls: &mut u64) {
        self.live_groups = 0;
        self.membership.clear();
        for q in self.queries.iter() {
            if q.picks.is_empty() {
                self.membership.push(usize::MAX);
                continue;
            }
            let group_index = if self.coalesce {
                self.groups[..self.live_groups]
                    .iter()
                    .position(|g| std::ptr::eq(self.queries[g.owner].detector, q.detector))
            } else {
                None
            };
            let group_index = group_index.unwrap_or_else(|| {
                let owner = self.membership.len();
                if self.live_groups == self.groups.len() {
                    self.groups.push(DetectorGroup {
                        owner,
                        frames: Vec::new(),
                        results: HashMap::new(),
                    });
                } else {
                    let slot = &mut self.groups[self.live_groups];
                    slot.owner = owner;
                    slot.frames.clear();
                    slot.results.clear();
                }
                self.live_groups += 1;
                self.live_groups - 1
            });
            self.groups[group_index].frames.extend_from_slice(&q.picks);
            self.membership.push(group_index);
        }
        for group in self.groups[..self.live_groups].iter_mut() {
            if self.coalesce {
                group.frames.sort_unstable();
                group.frames.dedup();
            }
            let detector = self.queries[group.owner].detector;
            self.detections_buf.clear();
            detector.detect_batch(&group.frames, &mut self.detections_buf);
            *detector_calls += 1;
            *detector_frames += group.frames.len() as u64;
            group.results.reserve(self.detections_buf.len());
            for (frame, detections) in group.frames.iter().zip(self.detections_buf.drain(..)) {
                group.results.insert(*frame, detections);
            }
        }
        for (q, &group_index) in self.queries.iter_mut().zip(&self.membership) {
            if q.picks.is_empty() {
                continue;
            }
            let results = &self.groups[group_index].results;
            let picks = std::mem::take(&mut q.picks);
            for &frame in &picks {
                let detections = results
                    .get(&frame)
                    .expect("every picked frame was detected this stage");
                Self::observe_frame(q, frame, detections);
            }
            // Hand the buffer back so the next stage reuses its allocation.
            q.picks = picks;
            q.picks.clear();
        }
    }

    /// Run every query to completion, invoking `on_stage` after each stage
    /// (the per-stage cost-accounting hook `exsample-sim` charges its virtual
    /// clock from).
    ///
    /// # Errors
    /// Returns [`EngineError::NoQueries`] if no query was registered.
    pub fn run_with<F: FnMut(&StageStats)>(
        &mut self,
        mut on_stage: F,
    ) -> Result<EngineReport, EngineError> {
        if self.queries.is_empty() {
            return Err(EngineError::NoQueries);
        }
        while let Some(stats) = self.run_stage() {
            on_stage(&stats);
        }
        Ok(self.report())
    }

    /// [`QueryEngine::run_with`] without a stage hook.
    ///
    /// # Errors
    /// Returns [`EngineError::NoQueries`] if no query was registered.
    pub fn run(&mut self) -> Result<EngineReport, EngineError> {
        self.run_with(|_| {})
    }

    /// Build the report for the engine's current state.
    pub fn report(&self) -> EngineReport {
        EngineReport {
            outcomes: self.queries.iter().map(QueryState::report).collect(),
            stages: self.stages,
            demanded_frames: self.demanded_frames,
            detector_frames: self.detector_frames,
            detector_calls: self.detector_calls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ExSamplePolicy, FrameSamplerPolicy};
    use exsample_core::ExSampleConfig;
    use exsample_detect::{GroundTruth, ObjectClass, ObjectInstance, PerfectDetector};
    use exsample_video::{Chunking, ChunkingPolicy, VideoRepository};
    use std::sync::Arc;

    fn setup(frames: u64, chunks: u32) -> (Chunking, Arc<GroundTruth>, PerfectDetector) {
        let repo = VideoRepository::single_clip(frames);
        let chunking = Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks });
        let mut instances = Vec::new();
        let start0 = frames * 7 / 8;
        let span = (frames / 96).max(2);
        for i in 0..12u64 {
            let start = start0 + i * span;
            let end = (start + span - 1).min(frames - 1);
            if start >= frames {
                break;
            }
            instances.push(ObjectInstance::simple(i, "car", start, end));
        }
        let truth = Arc::new(GroundTruth::from_instances(frames, instances));
        let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));
        (chunking, truth, detector)
    }

    #[test]
    fn single_query_finds_results_and_reports_stop_reason() {
        let (chunking, _truth, detector) = setup(40_000, 8);
        let mut engine = QueryEngine::new();
        let policy = ExSamplePolicy::new(ExSampleConfig::default(), &chunking);
        engine
            .push(
                QuerySpec::new("q", Box::new(policy), &detector)
                    .seed(3)
                    .batch(16)
                    .result_limit(5),
            )
            .unwrap();
        let report = engine.run().unwrap();
        let q = &report.outcomes[0];
        assert_eq!(q.stop_reason, Some(StopReason::ResultLimitReached));
        assert!(q.distinct_found >= 5);
        assert_eq!(q.true_found, q.found_instances.len());
        assert!(report.stages > 0);
        assert_eq!(report.demanded_frames, q.frames_processed);
    }

    #[test]
    fn frame_budget_is_exact_even_with_large_batches() {
        let (chunking, _truth, detector) = setup(40_000, 8);
        let mut engine = QueryEngine::new();
        let policy = ExSamplePolicy::new(ExSampleConfig::default(), &chunking);
        engine
            .push(
                QuerySpec::new("q", Box::new(policy), &detector)
                    .seed(5)
                    .batch(64)
                    .frame_budget(100),
            )
            .unwrap();
        let report = engine.run().unwrap();
        let q = &report.outcomes[0];
        assert_eq!(q.frames_processed, 100);
        assert_eq!(q.stop_reason, Some(StopReason::FrameBudgetExhausted));
    }

    #[test]
    fn repository_exhaustion_stops_queries() {
        let (chunking, _truth, detector) = setup(256, 4);
        let mut engine = QueryEngine::new();
        let policy = ExSamplePolicy::new(ExSampleConfig::default(), &chunking);
        engine
            .push(
                QuerySpec::new("q", Box::new(policy), &detector)
                    .seed(7)
                    .batch(32),
            )
            .unwrap();
        let report = engine.run().unwrap();
        let q = &report.outcomes[0];
        assert_eq!(q.stop_reason, Some(StopReason::RepositoryExhausted));
        assert_eq!(q.frames_processed, 256);
    }

    #[test]
    fn coalescing_reduces_detector_work_but_not_outcomes() {
        // Two identical uniform queries over a tiny repository *must* collide
        // on frames within a stage once enough of the range is covered.
        let (_chunking, _truth, detector) = setup(512, 4);
        let run = |coalesce: bool| {
            let mut engine = QueryEngine::new().coalesce(coalesce);
            for (i, seed) in [11u64, 11, 13].iter().enumerate() {
                engine
                    .push(
                        QuerySpec::new(
                            format!("q{i}"),
                            Box::new(FrameSamplerPolicy::uniform(512)),
                            &detector,
                        )
                        .seed(*seed)
                        .batch(64),
                    )
                    .unwrap();
            }
            engine.run().unwrap()
        };
        let coalesced = run(true);
        let uncoalesced = run(false);
        // Queries 0 and 1 share a seed, so their per-stage picks are identical
        // and coalescing halves that part of the detector bill.
        assert!(coalesced.detector_frames < coalesced.demanded_frames);
        assert_eq!(uncoalesced.detector_frames, uncoalesced.demanded_frames);
        assert_eq!(coalesced.demanded_frames, uncoalesced.demanded_frames);
        assert!(coalesced.coalesced_savings() > 0);
        // Outcomes are bit-identical either way.
        for (a, b) in coalesced.outcomes.iter().zip(&uncoalesced.outcomes) {
            assert_eq!(a.frames_processed, b.frames_processed);
            assert_eq!(a.found_instances, b.found_instances);
            assert_eq!(a.trajectory, b.trajectory);
            assert_eq!(a.stop_reason, b.stop_reason);
        }
    }

    #[test]
    fn zero_batch_and_empty_engine_are_typed_errors() {
        let (chunking, _truth, detector) = setup(256, 4);
        let mut engine = QueryEngine::new();
        let policy = ExSamplePolicy::new(ExSampleConfig::default(), &chunking);
        let err = engine
            .push(QuerySpec::new("bad", Box::new(policy), &detector).batch(0))
            .unwrap_err();
        assert!(matches!(err, EngineError::ZeroBatch { .. }));
        assert!(matches!(engine.run(), Err(EngineError::NoQueries)));
    }

    #[test]
    fn queries_with_different_budgets_finish_independently() {
        let (chunking, _truth, detector) = setup(40_000, 8);
        let mut engine = QueryEngine::new();
        for (label, budget) in [("short", 50u64), ("long", 400)] {
            let policy = ExSamplePolicy::new(ExSampleConfig::default(), &chunking);
            engine
                .push(
                    QuerySpec::new(label, Box::new(policy), &detector)
                        .seed(17)
                        .batch(25)
                        .frame_budget(budget),
                )
                .unwrap();
        }
        let report = engine.run().unwrap();
        assert_eq!(report.outcomes[0].frames_processed, 50);
        assert_eq!(report.outcomes[1].frames_processed, 400);
        // The long query keeps running after the short one stops.
        assert!(report.stages >= 16);
    }
}
