//! # exsample-engine
//!
//! The batched multi-query execution layer of the ExSample reproduction.
//!
//! The paper's Algorithm 1 is a per-frame loop: pick one frame, run the
//! detector, tell the discriminator, update the sampler.  A production system
//! serving many concurrent queries over one video repository cannot afford
//! that shape — detector inference dominates the cost and is vastly cheaper
//! when batched, and concurrent queries frequently want the *same* frames.
//! This crate rebuilds execution around two abstractions:
//!
//! * [`SamplingPolicy`] — one object-safe interface
//!   (`next_batch_into` / `record` / `remaining`) unifying ExSample, the
//!   whole-repository `random` / `random+` samplers, and the
//!   `SamplingMethod` baselines (proxy ordering, sequential scan) behind a
//!   single trait the engine drives without knowing the strategy.
//! * [`QueryEngine`] — a staged pipeline executing one or many queries:
//!
//! ```text
//!   queries      PICK                DETECT                 FAN-OUT
//!   q0: policy ──┐ picks₀ ──┐                         ┌──► d₀ → discr₀/policy₀
//!   q1: policy ──┤ picks₁ ──┼─► coalesce (sort+dedup) ┼──► d₁ → discr₁/policy₁
//!   q2: policy ──┘ picks₂ ──┘    per shared detector  └──► d₂ → discr₂/policy₂
//!                               one batched detect_batch
//!                               invocation per detector
//! ```
//!
//! ## Coalescing semantics
//!
//! Within one stage, the frame ids demanded by all queries that share a
//! detector instance are merged, sorted and deduplicated, and run through a
//! single batched detector invocation; each query then observes the detections
//! of *its own* picks, in its own pick order, through its own discriminator.
//! Because the simulated (and any sane real) detector is a pure function of
//! the frame id, coalescing changes only how much detector work is paid —
//! never any query's outcome — and the engine reports both numbers
//! ([`EngineReport::demanded_frames`] vs [`EngineReport::detector_frames`]).
//! Queries with different detectors (different object classes) coalesce
//! nothing but still share the stage cadence.
//!
//! ## Determinism
//!
//! Every query owns a private RNG stream seeded from its spec, stop conditions
//! are evaluated per query, and fan-out visits queries in registration order.
//! Per-query outcomes are therefore reproducible regardless of stage
//! interleaving: adding or removing concurrent queries, toggling coalescing,
//! or permuting registration order never changes what an individual query
//! finds.  A single-query engine at batch 1 consumes the caller's RNG exactly
//! as the paper's per-frame loop does — [`run_query`] (the legacy driver
//! entry point) is a thin wrapper over the engine, and the determinism tests
//! assert pick-for-pick equivalence against a faithful replica of the old
//! loop.
//!
//! ## Sharded execution
//!
//! The DETECT phase of every stage can be split across shards
//! ([`QueryEngine::sharded`] with a [`ShardRouter`] built from an
//! `exsample-video` `ShardSpec`): each picked frame is routed to the shard
//! owning its chunk, and one [`shard`] worker per shard runs the batched
//! detector invocations for its frames, keeping per-shard cost and hit
//! tallies.  PICK stays global (policies span the full chunk space and own
//! their per-query RNG streams) and FAN-OUT stays in registration/pick order,
//! so — detectors being pure functions of the frame id — the [`merge`] layer's
//! combined report is **bitwise-identical to an unsharded run** for any shard
//! count, any partitioner and any shard interleaving.  The only thing
//! sharding changes is *physical* invocation counts (a detector group whose
//! frames span shards needs one `detect_batch` per shard), which
//! [`ShardedReport`] accounts separately from the logical counts.
//!
//! ## Parallel execution
//!
//! Shard workers' DETECT phases are data-independent (a frame belongs to
//! exactly one shard, detectors are `Send + Sync` pure functions of the frame
//! id), so [`QueryEngine::execution`] with [`ExecutionMode::Parallel`] runs
//! them on worker threads.  By default ([`Dispatch::Pooled`]) those threads
//! form the [`runtime`] module's **persistent worker pool**: spawned once per
//! engine run, parked on blocking channels between stages, woken by a channel
//! send per parallel stage, joined when the run ends — never spawned per
//! stage (the legacy per-stage `std::thread::scope` behaviour remains
//! selectable as [`Dispatch::Scoped`], and is what a manual
//! [`QueryEngine::run_stage`] call outside a run uses).  Worker lanes and
//! detect scratch travel to the pool by value and come back with the results,
//! so their allocations are recycled across stages.  The stage's cache probe
//! rides inside the dispatched lanes (probes only read the lock-striped
//! cache's membership and tally commutatively), the cache commit is a serial
//! fixed-order arbitration, and FAN-OUT stays in registration/pick order —
//! parallelism reorders *work*, never observable results, so parallel runs
//! are bitwise-identical to serial ones (pinned for threads {1, 2, 4} ×
//! shards {1, 3, 7} × both partitioners × both dispatch modes, with the
//! cache on and off).  Serial remains the default; thread counts
//! exceeding the shard count are clamped to one thread per shard, and
//! `Parallel(0)` is a typed [`error::EngineError::InvalidExecution`].  A
//! detector panic on any lane — under either dispatch runtime — surfaces as
//! a typed [`error::EngineError::WorkerPanicked`], never a deadlocked
//! coordinator, a leaked thread or an unwinding stage loop.
//!
//! ## Failure model
//!
//! Detectors can *fail*, not just panic: the engine drives the fallible
//! `Detector::try_detect_batch` entry point and reacts per its configured
//! [`RetryPolicy`] and [`FailureMode`].  Retries are off by default (a
//! fault-free run is pick-for-pick and bitwise identical to the
//! pre-fault-tolerance engine); when enabled, each failed frame is retried
//! individually up to the attempt budget with deterministic exponential
//! backoff charged as *stage cost units* — never wall-clock sleeps — so
//! degraded runs stay reproducible.  Terminal failures are then handled per
//! [`FailureMode`]: fail fast with a typed
//! [`error::EngineError::DetectorFailed`] (the default), drop the frame and
//! tally the degradation ([`QueryReport::dropped_frames`]), or quarantine
//! the offending detector for the rest of the run
//! ([`StopReason::DetectorQuarantined`]).  Failed frames are never committed
//! to the detection cache, and fault telemetry (retries, backoff cost,
//! failed/dropped frames, quarantined detectors) flows through the per-shard
//! reports and the [`merge`] layer with the same bitwise-determinism
//! guarantee as every other tally.
//!
//! ## Batching & overlap
//!
//! Two opt-in physical-shape knobs, both bitwise-deterministic and both off
//! by default:
//!
//! * [`QueryEngine::aggregation`] gathers every shard's per-stage detector
//!   demand into one cross-shard batch per detector group (optionally capped
//!   via [`BatchAggregation::max_batch`]), scattering results back to each
//!   frame's owning shard.  Logical reports stay bitwise-identical to the
//!   per-shard path; unbounded aggregation collapses the *physical*
//!   invocation count to the logical one, which under a GPU-shaped
//!   `per_call + per_frame × n` cost model (`exsample-detect`'s
//!   `BatchingDetector`) is the batching win the `batched_detect` bench
//!   axis measures.
//! * [`QueryEngine::overlap`] pipelines stage `n + 1`'s SCHEDULE + PICK
//!   against stage `n`'s in-flight DETECT; the cache probe rides inside the
//!   dispatched lanes and the commit stays a serial canonical-order
//!   arbitration.  Stop decisions lag one stage (a query may overshoot
//!   its budget by up to one stage's batch) — the one documented semantic
//!   difference — and each overlapped configuration is itself
//!   bitwise-deterministic across the whole execution matrix.
//!
//! Physical batch-size statistics (count/min/mean/max) flow through
//! [`StageStats`], [`ShardReport`] and the [`merge`] layer as
//! [`merge::BatchStats`].
//!
//! ## Scheduling
//!
//! How many frames each live query may pick per stage is delegated to an
//! object-safe [`StageScheduler`]: [`RoundRobin`] (the default) grants every
//! live query its configured batch — the historical behaviour, pick-for-pick
//! — while [`BudgetProportional`] divides the stage's capacity in proportion
//! to remaining per-query frame budgets.
//!
//! ## Caching
//!
//! An optional bounded (detector, frame)→detections LRU cache
//! ([`QueryEngine::cache_capacity`] / [`QueryEngine::cache_config`], off by
//! default) carries detector results *across* stages and queries: a warm
//! re-query over cached frames issues zero new `detect_batch` invocations.
//! The store is the [`cache`] module's lock-striped
//! [`StripedDetectionCache`]: workers probe their own stripes concurrently
//! during the parallel DETECT dispatch, and all admissions/evictions are
//! applied by a serial fixed-order commit transaction, so hit/miss/eviction
//! accounting and the surviving entries are bitwise-identical across every
//! thread count, stripe count and dispatch runtime.  An opt-in count-min
//! frequency admission policy ([`AdmissionPolicy::Frequency`]) keeps a
//! churning scan from evicting a hot working set.
//!
//! ## Errors
//!
//! Configuration mistakes (sampler/chunking chunk-count mismatch, shard
//! spec/chunking mismatch, zero batch sizes, running an empty engine) surface
//! as typed [`EngineError`]s from the engine entry points instead of the seed
//! implementation's panics.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod driver;
pub mod engine;
pub mod error;
pub mod merge;
pub mod policy;
pub mod runtime;
pub mod scheduler;
pub mod shard;

pub use cache::{
    AdmissionPolicy, CacheActivity, CacheConfig, CacheStats, CacheTxn, CommitOutcome,
    DetectionCache, StripedDetectionCache,
};
pub use driver::{run_query, QueryOutcome};
pub use engine::{
    BatchAggregation, EngineReport, ExecutionMode, FailureMode, QueryEngine, QueryReport,
    QuerySpec, RetryPolicy, StageObservation, StageSink, StageStats, StopReason, TrajectoryPoint,
};
pub use error::{ChunkCountMismatch, EngineError};
pub use exsample_core::SelectionTelemetry;
pub use merge::{
    merge_reports, BatchStats, DetectorInvocations, MergeError, ShardQueryTally, ShardReport,
    ShardedReport,
};
pub use policy::{ExSamplePolicy, FrameSamplerPolicy, MethodPolicy, SamplingPolicy};
pub use runtime::{live_worker_threads, spawned_worker_threads, Dispatch};
pub use scheduler::{BudgetProportional, QueryLoad, RoundRobin, StageScheduler};
pub use shard::ShardRouter;
