//! Deterministic storage fault injection.
//!
//! [`FaultInjectingStorage`] wraps any [`Storage`] and injects short writes,
//! transient I/O errors and crash points according to a seeded
//! [`StoragePlan`] — the storage twin of the detector stack's
//! `FaultInjectingDetector`, and under the same determinism contract: never
//! `Math.random`-style nondeterminism.
//!
//! # Determinism contract
//!
//! A fault draw is a pure function of `(op, attempt)`, where `op` counts
//! *logical* operations (the store calls [`Storage::begin_op`] once before
//! each durable write it attempts, including compaction steps) and `attempt`
//! counts the physical calls made while retrying that logical operation.
//! Retrying a flaky append therefore re-rolls the schedule at the same `op`
//! with a higher `attempt`, exactly as a retried detector frame does.
//!
//! Three fault kinds are scheduled:
//!
//! * **transient I/O error** — with probability `transient_rate` a logical
//!   operation fails its first `transient_attempts` attempts with an
//!   `ErrorKind::Interrupted` [`StoreError::Io`], then succeeds.  This is
//!   the shape the store's truncate-and-retry machinery exists for.
//! * **short write** — with probability `short_write_rate` an append/write
//!   attempt persists only a prefix of its bytes and reports the short
//!   count, clearing after the same `transient_attempts` budget.  The
//!   prefix length is drawn from the same per-op stream, so it too is
//!   reproducible.
//! * **crash** — [`StoragePlan::crash_at`] names one *mutating physical
//!   call*; that call applies a partial effect (appends and writes persist a
//!   prefix — a torn tail; renames and truncates do nothing), then the
//!   backend behaves like a dead process: every subsequent call fails with
//!   [`StoreError::Crashed`].  The crash-matrix test sweeps `crash_at` over
//!   every mutating call index of a run.

use crate::error::StoreError;
use crate::storage::Storage;
use exsample_rand::SeedSequence;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A seeded, reproducible fault schedule for [`FaultInjectingStorage`].
///
/// All rates default to zero: `StoragePlan::new(seed)` injects nothing until
/// a builder method turns a fault kind on.  The plan is `Copy`-cheap
/// configuration; the wrapper derives its seed stream once at construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoragePlan {
    seed: u64,
    transient_rate: f64,
    transient_attempts: u32,
    short_write_rate: f64,
    crash_at: Option<u64>,
}

impl StoragePlan {
    /// A plan that injects nothing (until builder methods say otherwise).
    pub fn new(seed: u64) -> Self {
        StoragePlan {
            seed,
            transient_rate: 0.0,
            transient_attempts: 2,
            short_write_rate: 0.0,
            crash_at: None,
        }
    }

    /// Probability a logical operation draws transient I/O errors.
    pub fn transient_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "transient_rate must be a probability, got {rate}"
        );
        self.transient_rate = rate;
        self
    }

    /// How many attempts a transient operation fails before succeeding.
    pub fn transient_attempts(mut self, attempts: u32) -> Self {
        self.transient_attempts = attempts;
        self
    }

    /// Probability an append/write attempt persists only a prefix.
    pub fn short_write_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "short_write_rate must be a probability, got {rate}"
        );
        self.short_write_rate = rate;
        self
    }

    /// Crash at the `op`-th mutating physical call (0-based), then fail
    /// every subsequent call.
    pub fn crash_at(mut self, op: u64) -> Self {
        self.crash_at = Some(op);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Pure fault draw for one `(op, attempt)`: whether a transient error
    /// fires, whether a short write fires, and the fraction of bytes a
    /// partial write persists.
    fn draw(&self, seeds: &SeedSequence, op: u64, attempt: u32) -> (bool, bool, f64) {
        let mut rng = StdRng::seed_from_u64(seeds.index(op).seed());
        let transient_roll: f64 = rng.gen();
        let short_roll: f64 = rng.gen();
        let cut: f64 = rng.gen();
        let transient = transient_roll < self.transient_rate && attempt < self.transient_attempts;
        // Short writes clear after the same attempt budget as transients:
        // the injector models a flaky disk that heals under retry, which is
        // the shape the store's truncate-and-retry machinery exists for.
        let short = short_roll < self.short_write_rate && attempt < self.transient_attempts;
        (transient, short, cut)
    }
}

/// Shared fault counters, readable from outside after the wrapper has been
/// handed (boxed) to a store — clone a [`StorageFaultMonitor`] before that.
#[derive(Debug, Default)]
struct Counters {
    /// Logical operation counter (advanced by `begin_op`).
    logical_op: AtomicU64,
    /// Physical attempts within the current logical operation.
    attempt: AtomicU64,
    /// Total mutating physical calls — the `crash_at` axis.
    mutations: AtomicU64,
    crashed: AtomicBool,
    injected_transients: AtomicU64,
    injected_short_writes: AtomicU64,
}

/// Read-only handle onto a [`FaultInjectingStorage`]'s counters that stays
/// valid after the wrapper is boxed into a [`BeliefStore`](crate::BeliefStore).
#[derive(Debug, Clone)]
pub struct StorageFaultMonitor {
    counters: Arc<Counters>,
}

impl StorageFaultMonitor {
    /// Total mutating physical calls so far (the size of the crash matrix
    /// for a run that used this wrapper with no crash armed).
    pub fn mutations(&self) -> u64 {
        self.counters.mutations.load(Ordering::Relaxed)
    }

    /// How many transient I/O errors were injected.
    pub fn injected_transients(&self) -> u64 {
        self.counters.injected_transients.load(Ordering::Relaxed)
    }

    /// How many short writes were injected.
    pub fn injected_short_writes(&self) -> u64 {
        self.counters.injected_short_writes.load(Ordering::Relaxed)
    }

    /// Whether the simulated crash has fired.
    pub fn has_crashed(&self) -> bool {
        self.counters.crashed.load(Ordering::Relaxed)
    }
}

/// A [`Storage`] wrapper that injects the faults a [`StoragePlan`]
/// schedules.  See the module docs for the determinism contract.
#[derive(Debug)]
pub struct FaultInjectingStorage<S> {
    inner: S,
    plan: StoragePlan,
    seeds: SeedSequence,
    counters: Arc<Counters>,
}

impl<S: Storage> FaultInjectingStorage<S> {
    /// Wrap `inner` with the faults `plan` schedules.
    pub fn new(inner: S, plan: StoragePlan) -> Self {
        let seeds = SeedSequence::new(plan.seed()).derive("storage-fault-plan");
        FaultInjectingStorage {
            inner,
            plan,
            seeds,
            counters: Arc::default(),
        }
    }

    /// The wrapped backend.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// A counter handle that outlives handing this wrapper to a store.
    pub fn monitor(&self) -> StorageFaultMonitor {
        StorageFaultMonitor {
            counters: Arc::clone(&self.counters),
        }
    }

    /// Total mutating physical calls so far.
    pub fn mutations(&self) -> u64 {
        self.counters.mutations.load(Ordering::Relaxed)
    }

    /// How many transient I/O errors were injected.
    pub fn injected_transients(&self) -> u64 {
        self.counters.injected_transients.load(Ordering::Relaxed)
    }

    /// How many short writes were injected.
    pub fn injected_short_writes(&self) -> u64 {
        self.counters.injected_short_writes.load(Ordering::Relaxed)
    }

    /// Whether the simulated crash has fired.
    pub fn has_crashed(&self) -> bool {
        self.counters.crashed.load(Ordering::Relaxed)
    }

    fn check_alive(&self) -> Result<(), StoreError> {
        if self.counters.crashed.load(Ordering::Relaxed) {
            return Err(StoreError::Crashed {
                op: self.plan.crash_at.unwrap_or(0),
            });
        }
        Ok(())
    }

    /// Account one mutating physical call; `true` if this is the crash
    /// point (the caller applies the partial effect first where one exists).
    fn mutation_fires_crash(&self) -> bool {
        let index = self.counters.mutations.fetch_add(1, Ordering::Relaxed);
        if Some(index) == self.plan.crash_at {
            self.counters.crashed.store(true, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// The `(transient, short, cut)` draw for the current `(op, attempt)`,
    /// advancing the attempt counter.
    fn next_draw(&self) -> (bool, bool, f64) {
        let op = self.counters.logical_op.load(Ordering::Relaxed);
        let attempt = self.counters.attempt.fetch_add(1, Ordering::Relaxed) as u32;
        self.plan.draw(&self.seeds, op, attempt)
    }

    fn transient_error(&self, op: &'static str, name: &str) -> StoreError {
        self.counters
            .injected_transients
            .fetch_add(1, Ordering::Relaxed);
        StoreError::Io {
            op,
            file: name.to_string(),
            kind: std::io::ErrorKind::Interrupted,
            message: "injected transient i/o fault".to_string(),
        }
    }

    /// Partial byte count for a torn write of `len` bytes: at least 0, at
    /// most `len - 1`.
    fn cut_len(len: usize, cut: f64) -> usize {
        if len == 0 {
            return 0;
        }
        ((len as f64 * cut) as usize).min(len - 1)
    }
}

impl<S: Storage> Storage for FaultInjectingStorage<S> {
    fn begin_op(&mut self) {
        self.counters.logical_op.fetch_add(1, Ordering::Relaxed);
        self.counters.attempt.store(0, Ordering::Relaxed);
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        self.check_alive()?;
        self.inner.read(name)
    }

    fn len(&self, name: &str) -> Result<Option<u64>, StoreError> {
        self.check_alive()?;
        self.inner.len(name)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<usize, StoreError> {
        self.check_alive()?;
        let (transient, short, cut) = self.next_draw();
        if self.mutation_fires_crash() {
            // The kill lands mid-write: a prefix reaches the disk, then the
            // process is gone.  This is the torn tail recovery must absorb.
            let partial = Self::cut_len(bytes.len(), cut);
            self.inner.append(name, &bytes[..partial])?;
            return Err(StoreError::Crashed {
                op: self.plan.crash_at.unwrap_or(0),
            });
        }
        if transient {
            return Err(self.transient_error("append", name));
        }
        if short {
            self.counters
                .injected_short_writes
                .fetch_add(1, Ordering::Relaxed);
            let partial = Self::cut_len(bytes.len(), cut);
            self.inner.append(name, &bytes[..partial])?;
            return Ok(partial);
        }
        self.inner.append(name, bytes)
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<usize, StoreError> {
        self.check_alive()?;
        let (transient, short, cut) = self.next_draw();
        if self.mutation_fires_crash() {
            let partial = Self::cut_len(bytes.len(), cut);
            self.inner.write(name, &bytes[..partial])?;
            return Err(StoreError::Crashed {
                op: self.plan.crash_at.unwrap_or(0),
            });
        }
        if transient {
            return Err(self.transient_error("write", name));
        }
        if short {
            self.counters
                .injected_short_writes
                .fetch_add(1, Ordering::Relaxed);
            let partial = Self::cut_len(bytes.len(), cut);
            self.inner.write(name, &bytes[..partial])?;
            return Ok(partial);
        }
        self.inner.write(name, bytes)
    }

    fn sync(&mut self, name: &str) -> Result<(), StoreError> {
        self.check_alive()?;
        let (transient, _, _) = self.next_draw();
        if self.mutation_fires_crash() {
            // A crash at fsync: the data written before it may or may not be
            // durable; we model the pessimistic half by keeping whatever the
            // backend already holds (the preceding writes) and dying here.
            return Err(StoreError::Crashed {
                op: self.plan.crash_at.unwrap_or(0),
            });
        }
        if transient {
            return Err(self.transient_error("sync", name));
        }
        self.inner.sync(name)
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        self.check_alive()?;
        let (transient, _, _) = self.next_draw();
        if self.mutation_fires_crash() {
            // Rename is atomic: a crash leaves it entirely undone.
            return Err(StoreError::Crashed {
                op: self.plan.crash_at.unwrap_or(0),
            });
        }
        if transient {
            return Err(self.transient_error("rename", from));
        }
        self.inner.rename(from, to)
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        self.check_alive()?;
        let (transient, _, _) = self.next_draw();
        if self.mutation_fires_crash() {
            return Err(StoreError::Crashed {
                op: self.plan.crash_at.unwrap_or(0),
            });
        }
        if transient {
            return Err(self.transient_error("remove", name));
        }
        self.inner.remove(name)
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StoreError> {
        self.check_alive()?;
        let (transient, _, _) = self.next_draw();
        if self.mutation_fires_crash() {
            // Truncate either happened or it did not; model "did not".
            return Err(StoreError::Crashed {
                op: self.plan.crash_at.unwrap_or(0),
            });
        }
        if transient {
            return Err(self.transient_error("truncate", name));
        }
        self.inner.truncate(name, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn flaky_plan() -> StoragePlan {
        StoragePlan::new(7)
            .transient_rate(0.5)
            .transient_attempts(1)
            .short_write_rate(0.3)
    }

    /// Drive a fixed script of operations, recording each outcome's shape.
    fn script(storage: &mut FaultInjectingStorage<MemStorage>) -> Vec<String> {
        let mut outcomes = Vec::new();
        for i in 0..32u64 {
            storage.begin_op();
            let payload = vec![b'x'; 16 + (i as usize % 7)];
            let mut attempt = 0;
            loop {
                match storage.append("log", &payload) {
                    Ok(n) if n == payload.len() => {
                        outcomes.push(format!("op{i}:ok@{attempt}"));
                        break;
                    }
                    Ok(n) => outcomes.push(format!("op{i}:short{n}@{attempt}")),
                    Err(e) if e.is_transient() => outcomes.push(format!("op{i}:tr@{attempt}")),
                    Err(e) => panic!("unexpected error {e}"),
                }
                attempt += 1;
                assert!(attempt < 10, "operation never succeeded");
            }
        }
        outcomes
    }

    #[test]
    fn fault_schedule_is_reproducible() {
        let mut a = FaultInjectingStorage::new(MemStorage::new(), flaky_plan());
        let mut b = FaultInjectingStorage::new(MemStorage::new(), flaky_plan());
        let left = script(&mut a);
        let right = script(&mut b);
        assert_eq!(left, right);
        assert!(
            a.injected_transients() > 0 && a.injected_short_writes() > 0,
            "the flaky plan should actually inject ({} transients, {} shorts)",
            a.injected_transients(),
            a.injected_short_writes()
        );
        assert_eq!(a.injected_transients(), b.injected_transients());
        assert_eq!(a.injected_short_writes(), b.injected_short_writes());
    }

    #[test]
    fn transient_faults_clear_after_the_configured_attempts() {
        let plan = StoragePlan::new(11)
            .transient_rate(1.0)
            .transient_attempts(2);
        let mut storage = FaultInjectingStorage::new(MemStorage::new(), plan);
        storage.begin_op();
        assert!(storage.append("log", b"abcd").unwrap_err().is_transient());
        assert!(storage.append("log", b"abcd").unwrap_err().is_transient());
        assert_eq!(storage.append("log", b"abcd").unwrap(), 4);
        // A fresh logical op starts a fresh attempt counter.
        storage.begin_op();
        assert!(storage.append("log", b"abcd").unwrap_err().is_transient());
    }

    #[test]
    fn crash_applies_a_partial_write_then_kills_everything() {
        let plan = StoragePlan::new(3).crash_at(1);
        let mut storage = FaultInjectingStorage::new(MemStorage::new(), plan);
        storage.begin_op();
        assert_eq!(storage.append("log", b"0123456789").unwrap(), 10);
        storage.begin_op();
        let err = storage.append("log", b"0123456789").unwrap_err();
        assert_eq!(err, StoreError::Crashed { op: 1 });
        assert!(storage.has_crashed());
        // Dead means dead: reads and writes all fail now.
        assert!(storage.read("log").is_err());
        assert!(storage.append("log", b"x").is_err());
        assert!(storage.truncate("log", 0).is_err());
        // The torn tail survived: more than the first append, less than both.
        let survived = storage.into_inner().read("log").unwrap().unwrap();
        assert!(
            survived.len() >= 10 && survived.len() < 20,
            "{}",
            survived.len()
        );
    }

    #[test]
    fn zero_rate_plan_is_transparent() {
        let mut storage = FaultInjectingStorage::new(MemStorage::new(), StoragePlan::new(5));
        for _ in 0..8 {
            storage.begin_op();
            assert_eq!(storage.append("log", b"abc").unwrap(), 3);
        }
        storage.begin_op();
        storage.sync("log").unwrap();
        assert_eq!(storage.mutations(), 9);
        assert_eq!(storage.injected_transients(), 0);
        assert_eq!(storage.injected_short_writes(), 0);
        assert_eq!(storage.into_inner().read("log").unwrap().unwrap().len(), 24);
    }
}
