//! The durable belief store: append-only log + snapshot compaction +
//! torn-tail recovery.
//!
//! # Files
//!
//! A store directory holds up to three flat files:
//!
//! * `log` — append-only [`Record`] frames.  Always begins with a
//!   [`Record::Generation`] marker tying it to the snapshot it extends.
//! * `snapshot` — the compacted absolute state, written atomically
//!   (temp-write → fsync → rename).  Begins with
//!   [`Record::SnapshotHeader`].
//! * `snapshot.tmp` — in-flight compaction output; removed on open.
//!
//! # Commit protocol
//!
//! Callers stage records with [`BeliefStore::append_delta`] /
//! [`BeliefStore::append_result`], then make a stage durable with
//! [`BeliefStore::commit_stage`]: the staged records plus a
//! [`Record::StageCommit`] marker are appended to the log in **one** write
//! and fsynced, then folded into the in-memory state.  Recovery folds log
//! records into state only up to the last commit marker, so a stage is
//! atomic: either its commit frame survived and the whole stage is applied,
//! or none of it is.
//!
//! # Recovery rules
//!
//! 1. Delete `snapshot.tmp` (an interrupted compaction's scratch).
//! 2. Load `snapshot` if present; it must parse completely (snapshots are
//!    written atomically, so damage here is [`StoreError::CorruptSnapshot`],
//!    never silently dropped).
//! 3. Scan `log` frame by frame.  The first invalid frame (incomplete
//!    header, truncated payload, CRC mismatch, undecodable payload) is the
//!    **torn tail**: it and everything after it are discarded.
//! 4. Records replay onto the snapshot only while the log's generation
//!    marker matches the snapshot's generation, and only up to the last
//!    [`Record::StageCommit`].  A stale-generation log (the leftover of a
//!    crash between snapshot-rename and log-truncate) is discarded whole —
//!    its contents are already inside the snapshot, and skipping it is what
//!    prevents double-apply.
//! 5. The log file is physically truncated back to the last committed
//!    frame (or reset to a fresh generation marker), so a recovered store
//!    is byte-for-byte a store that never crashed.
//!
//! All mutating I/O goes through durable helpers that retry transient
//! failures (`ErrorKind::Interrupted`) and roll back short writes by
//! truncating to the pre-write length before retrying — a half-appended
//! frame is never left in front of a later good frame.

use crate::error::StoreError;
use crate::record::{encode_frames, next_frame, FrameScan, Record};
use crate::storage::{FsStorage, Storage};
use std::collections::BTreeMap;

const LOG: &str = "log";
const SNAPSHOT: &str = "snapshot";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// Retry budget for one durable operation's transient failures.
const MAX_ATTEMPTS: u32 = 8;

/// Default number of stage commits between snapshot compactions.
const DEFAULT_COMPACT_EVERY: u64 = 64;

/// One `(class, chunk)` belief cell: the ExSample posterior statistics
/// `N1` (signed: track re-matches subtract) and the sample count `n`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BeliefCell {
    /// Accumulated `N1` for the chunk.
    pub n1: i64,
    /// Accumulated sample count `n` for the chunk.
    pub samples: u64,
}

/// One recovered distinct result: where and when an instance was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultCell {
    /// Frame the instance was first found on.
    pub frame: u64,
    /// Stage of the find.
    pub stage: u64,
}

/// The merged durable state: interned classes, per-`(class, chunk)` belief
/// cells, and distinct results.  Deterministically ordered (`BTreeMap`s) so
/// two stores that applied the same commits compare — and iterate —
/// bitwise-identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BeliefState {
    classes: Vec<String>,
    beliefs: BTreeMap<(u32, u32), BeliefCell>,
    results: BTreeMap<(u32, u64), ResultCell>,
}

impl BeliefState {
    /// Interned class names, densest id first.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// The id a class name was interned to, if it ever appeared.
    pub fn class_id(&self, name: &str) -> Option<u32> {
        self.classes
            .iter()
            .position(|c| c == name)
            .map(|i| i as u32)
    }

    /// One belief cell, if the `(class, chunk)` pair ever recorded.
    pub fn belief(&self, class: u32, chunk: u32) -> Option<BeliefCell> {
        self.beliefs.get(&(class, chunk)).copied()
    }

    /// All belief cells, ordered by `(class, chunk)`.
    pub fn beliefs(&self) -> impl Iterator<Item = ((u32, u32), BeliefCell)> + '_ {
        self.beliefs.iter().map(|(k, v)| (*k, *v))
    }

    /// The belief cells of one class, ordered by chunk.
    pub fn beliefs_for(&self, class: u32) -> impl Iterator<Item = (u32, BeliefCell)> + '_ {
        self.beliefs
            .range((class, 0)..=(class, u32::MAX))
            .map(|(&(_, chunk), &cell)| (chunk, cell))
    }

    /// All distinct results, ordered by `(class, instance)`.
    pub fn results(&self) -> impl Iterator<Item = ((u32, u64), ResultCell)> + '_ {
        self.results.iter().map(|(k, v)| (*k, *v))
    }

    /// How many distinct instances a class has recorded.
    pub fn result_count(&self, class: u32) -> usize {
        self.results.range((class, 0)..=(class, u64::MAX)).count()
    }

    /// Fold one record into the state.  Lenient by design: a record that
    /// does not fit (unknown class, duplicate intern) is skipped, because
    /// recovery must never panic or refuse a log whose frames all passed
    /// their CRCs.  Returns whether the record was applied.
    fn apply(&mut self, record: &Record) -> bool {
        match record {
            Record::ClassName { class, name } => {
                let id = *class as usize;
                if id == self.classes.len() {
                    self.classes.push(name.clone());
                    true
                } else {
                    // Re-interning an existing id is idempotent; a gap is
                    // skipped (see method docs).
                    id < self.classes.len()
                }
            }
            Record::BeliefDelta {
                class,
                chunk,
                n1_delta,
                samples_delta,
                ..
            } => {
                let cell = self.beliefs.entry((*class, *chunk)).or_default();
                cell.n1 += n1_delta;
                cell.samples += samples_delta;
                true
            }
            Record::BeliefTotal {
                class,
                chunk,
                n1,
                samples,
            } => {
                self.beliefs.insert(
                    (*class, *chunk),
                    BeliefCell {
                        n1: *n1,
                        samples: *samples,
                    },
                );
                true
            }
            Record::ResultFound {
                class,
                frame,
                instance,
                stage,
            } => {
                // First find wins; later sightings of the same instance are
                // legal in the log (e.g. repeated trials) but change nothing.
                self.results
                    .entry((*class, *instance))
                    .or_insert(ResultCell {
                        frame: *frame,
                        stage: *stage,
                    });
                true
            }
            // Structural records carry no state.
            Record::SnapshotHeader { .. }
            | Record::Generation { .. }
            | Record::StageCommit { .. } => false,
        }
    }
}

/// Cumulative health counters, reported into `RunResult` like the detector
/// fault tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreHealth {
    /// Log records folded into state during recovery.
    pub records_replayed: u64,
    /// Bytes discarded from the log tail during recovery (the torn tail
    /// plus any valid-but-uncommitted suffix).
    pub torn_tail_bytes: u64,
    /// Snapshot compactions performed.
    pub snapshot_compactions: u64,
    /// Transient I/O failures and short writes absorbed by retrying.
    pub io_retries: u64,
}

impl StoreHealth {
    /// Sum another health report into this one (e.g. a warm-start open plus
    /// a checkpoint store's run counters).
    pub fn merge(&mut self, other: &StoreHealth) {
        self.records_replayed += other.records_replayed;
        self.torn_tail_bytes += other.torn_tail_bytes;
        self.snapshot_compactions += other.snapshot_compactions;
        self.io_retries += other.io_retries;
    }
}

/// What [`BeliefStore::open`] found and repaired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The live snapshot generation (0 for a virgin store).
    pub generation: u64,
    /// The last committed stage visible after recovery.
    pub last_committed_stage: Option<u64>,
    /// Log records folded into state.
    pub records_replayed: u64,
    /// Bytes discarded from the log tail.
    pub torn_tail_bytes: u64,
    /// Whether a snapshot was loaded.
    pub snapshot_loaded: bool,
}

/// The crash-safe durable belief store.  See the module docs for the file
/// layout, commit protocol and recovery rules.
pub struct BeliefStore {
    storage: Box<dyn Storage>,
    state: BeliefState,
    pending: Vec<Record>,
    generation: u64,
    last_committed_stage: Option<u64>,
    commits_since_compact: u64,
    compact_every: u64,
    health: StoreHealth,
}

impl std::fmt::Debug for BeliefStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BeliefStore")
            .field("generation", &self.generation)
            .field("last_committed_stage", &self.last_committed_stage)
            .field("pending", &self.pending.len())
            .field("health", &self.health)
            .finish()
    }
}

impl BeliefStore {
    /// Open a store over `storage`, running recovery.  Returns the store and
    /// what recovery found.
    pub fn open<S: Storage + 'static>(storage: S) -> Result<(Self, RecoveryReport), StoreError> {
        Self::open_boxed(Box::new(storage))
    }

    /// Open a store rooted at a real directory.
    pub fn open_dir(
        path: impl Into<std::path::PathBuf>,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        Self::open_boxed(Box::new(FsStorage::open(path)?))
    }

    fn open_boxed(storage: Box<dyn Storage>) -> Result<(Self, RecoveryReport), StoreError> {
        let mut store = BeliefStore {
            storage,
            state: BeliefState::default(),
            pending: Vec::new(),
            generation: 0,
            last_committed_stage: None,
            commits_since_compact: 0,
            compact_every: DEFAULT_COMPACT_EVERY,
            health: StoreHealth::default(),
        };
        let report = store.recover()?;
        Ok((store, report))
    }

    /// Recovery rule 1–5 (see module docs).
    fn recover(&mut self) -> Result<RecoveryReport, StoreError> {
        self.remove_durably(SNAPSHOT_TMP)?;

        // Rule 2: the snapshot, which must parse completely.
        let snapshot_loaded = if let Some(bytes) = self.storage.read(SNAPSHOT)? {
            self.load_snapshot(&bytes)?;
            true
        } else {
            false
        };

        // Rules 3–4: scan the log, fold committed records of the live
        // generation, note where the keepable bytes end.
        let log = self.storage.read(LOG)?.unwrap_or_default();
        let mut pos = 0usize;
        let mut keep_end = 0usize;
        let mut replay_generation = 0u64;
        let mut stale = false;
        let mut staged: Vec<Record> = Vec::new();
        let mut replayed = 0u64;
        loop {
            match next_frame(&log, pos) {
                FrameScan::End => break,
                FrameScan::Torn => break,
                FrameScan::Complete { record, next } => {
                    match record {
                        Record::Generation { generation } => {
                            replay_generation = generation;
                            if generation == self.generation {
                                keep_end = next;
                            } else {
                                stale = true;
                            }
                        }
                        Record::StageCommit { stage } if replay_generation == self.generation => {
                            for record in staged.drain(..) {
                                if self.state.apply(&record) {
                                    replayed += 1;
                                }
                            }
                            replayed += 1; // the commit marker itself
                            self.last_committed_stage = Some(stage);
                            keep_end = next;
                        }
                        _ if replay_generation == self.generation => staged.push(record),
                        _ => stale = true,
                    }
                    pos = next;
                }
            }
        }

        // Rule 5: make the on-disk log match what replay accepted.
        let torn = if stale {
            // The whole log predates the live snapshot: its effects are
            // already inside it.  Start a fresh generation-marked log.
            let dropped = log.len() as u64;
            self.reset_log()?;
            dropped
        } else {
            let dropped = (log.len() - keep_end) as u64;
            if keep_end == 0 {
                // Nothing worth keeping (virgin store, or the generation
                // marker itself was torn): rewrite the marker from scratch.
                self.reset_log()?;
            } else if dropped > 0 {
                self.truncate_durably(LOG, keep_end as u64)?;
                self.sync_durably(LOG)?;
            }
            dropped
        };

        self.health.records_replayed += replayed;
        self.health.torn_tail_bytes += torn;
        Ok(RecoveryReport {
            generation: self.generation,
            last_committed_stage: self.last_committed_stage,
            records_replayed: replayed,
            torn_tail_bytes: torn,
            snapshot_loaded,
        })
    }

    fn load_snapshot(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        let mut pos = 0usize;
        let mut first = true;
        loop {
            match next_frame(bytes, pos) {
                FrameScan::End => break,
                FrameScan::Torn => {
                    return Err(StoreError::CorruptSnapshot {
                        offset: pos as u64,
                        detail:
                            "invalid frame (snapshots are written atomically; this file is damaged)"
                                .to_string(),
                    });
                }
                FrameScan::Complete { record, next } => {
                    if first {
                        let Record::SnapshotHeader {
                            generation,
                            last_stage,
                        } = record
                        else {
                            return Err(StoreError::CorruptSnapshot {
                                offset: pos as u64,
                                detail: "first record is not a snapshot header".to_string(),
                            });
                        };
                        self.generation = generation;
                        self.last_committed_stage = last_stage;
                        first = false;
                    } else {
                        self.state.apply(&record);
                    }
                    pos = next;
                }
            }
        }
        if first {
            return Err(StoreError::CorruptSnapshot {
                offset: 0,
                detail: "snapshot is empty".to_string(),
            });
        }
        Ok(())
    }

    /// Truncate the log and write a fresh generation marker.
    fn reset_log(&mut self) -> Result<(), StoreError> {
        self.truncate_durably(LOG, 0)?;
        let marker = encode_frames(&[Record::Generation {
            generation: self.generation,
        }]);
        self.append_durably(LOG, &marker)?;
        self.sync_durably(LOG)
    }

    /// Intern a detector-class name, staging a [`Record::ClassName`] for the
    /// next commit if it is new.
    pub fn intern_class(&mut self, name: &str) -> u32 {
        if let Some(id) = self.state.class_id(name) {
            return id;
        }
        let id = self.state.classes.len() as u32;
        let record = Record::ClassName {
            class: id,
            name: name.to_string(),
        };
        self.state.apply(&record);
        self.pending.push(record);
        id
    }

    /// Stage one belief delta for the next commit.
    pub fn append_delta(
        &mut self,
        class: u32,
        chunk: u32,
        n1_delta: i64,
        samples_delta: u64,
        stage: u64,
    ) -> Result<(), StoreError> {
        self.check_class(class)?;
        self.pending.push(Record::BeliefDelta {
            class,
            chunk,
            n1_delta,
            samples_delta,
            stage,
        });
        Ok(())
    }

    /// Stage one distinct-result record for the next commit.
    pub fn append_result(
        &mut self,
        class: u32,
        frame: u64,
        instance: u64,
        stage: u64,
    ) -> Result<(), StoreError> {
        self.check_class(class)?;
        self.pending.push(Record::ResultFound {
            class,
            frame,
            instance,
            stage,
        });
        Ok(())
    }

    fn check_class(&self, class: u32) -> Result<(), StoreError> {
        if (class as usize) < self.state.classes.len() {
            Ok(())
        } else {
            Err(StoreError::InvalidRecord {
                detail: format!("class id {class} was never interned"),
            })
        }
    }

    /// Make the staged records durable as one atomic stage (see module
    /// docs), then fold them into the in-memory state.  Commits with no
    /// staged records still write the commit marker, advancing
    /// [`BeliefStore::last_committed_stage`].
    pub fn commit_stage(&mut self, stage: u64) -> Result<(), StoreError> {
        self.pending.push(Record::StageCommit { stage });
        let bytes = encode_frames(&self.pending);
        self.append_durably(LOG, &bytes)?;
        self.sync_durably(LOG)?;
        for record in std::mem::take(&mut self.pending) {
            self.state.apply(&record);
        }
        self.last_committed_stage = Some(stage);
        self.commits_since_compact += 1;
        if self.commits_since_compact >= self.compact_every {
            self.compact()?;
        }
        Ok(())
    }

    /// Force a snapshot compaction now (also called automatically every
    /// `compact_every` commits).  Uncommitted staged records are not
    /// included — only committed state is ever snapshotted.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        self.compact()
    }

    /// Change the automatic compaction cadence (commits between snapshots).
    pub fn set_compact_every(&mut self, commits: u64) {
        self.compact_every = commits.max(1);
    }

    /// Temp-write → fsync → atomic rename, then restart the log under the
    /// new generation.  Crash-safe at every step: recovery either sees the
    /// old snapshot plus the full old log, or the new snapshot plus a log it
    /// recognises as stale and discards (never both applied).
    fn compact(&mut self) -> Result<(), StoreError> {
        let next_generation = self.generation + 1;
        let mut records = Vec::with_capacity(
            1 + self.state.classes.len() + self.state.beliefs.len() + self.state.results.len(),
        );
        records.push(Record::SnapshotHeader {
            generation: next_generation,
            last_stage: self.last_committed_stage,
        });
        for (id, name) in self.state.classes.iter().enumerate() {
            records.push(Record::ClassName {
                class: id as u32,
                name: name.clone(),
            });
        }
        for (&(class, chunk), cell) in &self.state.beliefs {
            records.push(Record::BeliefTotal {
                class,
                chunk,
                n1: cell.n1,
                samples: cell.samples,
            });
        }
        for (&(class, instance), cell) in &self.state.results {
            records.push(Record::ResultFound {
                class,
                frame: cell.frame,
                instance,
                stage: cell.stage,
            });
        }
        let bytes = encode_frames(&records);
        self.write_durably(SNAPSHOT_TMP, &bytes)?;
        self.sync_durably(SNAPSHOT_TMP)?;
        self.rename_durably(SNAPSHOT_TMP, SNAPSHOT)?;
        self.generation = next_generation;
        self.reset_log()?;
        self.health.snapshot_compactions += 1;
        self.commits_since_compact = 0;
        Ok(())
    }

    /// The merged durable state (committed records only).
    pub fn state(&self) -> &BeliefState {
        &self.state
    }

    /// The last committed stage, if any stage ever committed.
    pub fn last_committed_stage(&self) -> Option<u64> {
        self.last_committed_stage
    }

    /// The live snapshot generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Cumulative health counters (recovery + run).
    pub fn health(&self) -> StoreHealth {
        self.health
    }

    /// Records staged but not yet committed.
    pub fn pending_records(&self) -> usize {
        self.pending.len()
    }

    // ---- durable I/O helpers -------------------------------------------
    //
    // Each helper is one *logical* operation: it calls `begin_op` once, then
    // retries transient failures (and rolls back short writes) up to
    // MAX_ATTEMPTS physical attempts.  Every retry is counted in
    // `health.io_retries`.

    fn append_durably(&mut self, name: &'static str, bytes: &[u8]) -> Result<(), StoreError> {
        let base = self.storage.len(name)?.unwrap_or(0);
        self.storage.begin_op();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let failure = match self.storage.append(name, bytes) {
                Ok(n) if n == bytes.len() => return Ok(()),
                Ok(n) => StoreError::Io {
                    op: "append",
                    file: name.to_string(),
                    kind: std::io::ErrorKind::WriteZero,
                    message: format!("short write: {n} of {} bytes", bytes.len()),
                },
                Err(e) if e.is_transient() => e,
                Err(e) => return Err(e),
            };
            // Roll the partial bytes back before retrying so a half frame is
            // never left in front of the retried (good) one.
            self.rollback(name, base)?;
            self.health.io_retries += 1;
            if attempts >= MAX_ATTEMPTS {
                return Err(StoreError::RetriesExhausted {
                    op: "append",
                    file: name.to_string(),
                    attempts,
                    source: Box::new(failure),
                });
            }
        }
    }

    /// Truncate back to `base` as part of an append retry (same logical op,
    /// so no `begin_op`), retrying its own transient failures.
    fn rollback(&mut self, name: &'static str, base: u64) -> Result<(), StoreError> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.storage.truncate(name, base) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempts < MAX_ATTEMPTS => {
                    self.health.io_retries += 1;
                }
                Err(e) if e.is_transient() => {
                    return Err(StoreError::RetriesExhausted {
                        op: "truncate",
                        file: name.to_string(),
                        attempts,
                        source: Box::new(e),
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn write_durably(&mut self, name: &'static str, bytes: &[u8]) -> Result<(), StoreError> {
        self.storage.begin_op();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let failure = match self.storage.write(name, bytes) {
                // `write` replaces the whole file, so a short write needs no
                // rollback — the retry overwrites it.
                Ok(n) if n == bytes.len() => return Ok(()),
                Ok(n) => StoreError::Io {
                    op: "write",
                    file: name.to_string(),
                    kind: std::io::ErrorKind::WriteZero,
                    message: format!("short write: {n} of {} bytes", bytes.len()),
                },
                Err(e) if e.is_transient() => e,
                Err(e) => return Err(e),
            };
            self.health.io_retries += 1;
            if attempts >= MAX_ATTEMPTS {
                return Err(StoreError::RetriesExhausted {
                    op: "write",
                    file: name.to_string(),
                    attempts,
                    source: Box::new(failure),
                });
            }
        }
    }

    fn sync_durably(&mut self, name: &'static str) -> Result<(), StoreError> {
        self.storage.begin_op();
        self.retry_simple("sync", name, |s, n| s.sync(n))
    }

    fn rename_durably(&mut self, from: &'static str, to: &'static str) -> Result<(), StoreError> {
        self.storage.begin_op();
        self.retry_simple("rename", from, |s, n| s.rename(n, to))
    }

    fn remove_durably(&mut self, name: &'static str) -> Result<(), StoreError> {
        self.storage.begin_op();
        self.retry_simple("remove", name, |s, n| s.remove(n))
    }

    fn truncate_durably(&mut self, name: &'static str, len: u64) -> Result<(), StoreError> {
        self.storage.begin_op();
        self.retry_simple("truncate", name, |s, n| s.truncate(n, len))
    }

    fn retry_simple(
        &mut self,
        op: &'static str,
        name: &'static str,
        mut call: impl FnMut(&mut dyn Storage, &str) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match call(self.storage.as_mut(), name) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempts < MAX_ATTEMPTS => {
                    self.health.io_retries += 1;
                }
                Err(e) if e.is_transient() => {
                    return Err(StoreError::RetriesExhausted {
                        op,
                        file: name.to_string(),
                        attempts,
                        source: Box::new(e),
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn open_mem(files: &crate::storage::MemFiles) -> (BeliefStore, RecoveryReport) {
        BeliefStore::open(MemStorage::with_files(std::sync::Arc::clone(files))).unwrap()
    }

    #[test]
    fn fresh_store_commits_and_reopens_identically() {
        let mem = MemStorage::new();
        let files = mem.files();
        let state = {
            let (mut store, report) = BeliefStore::open(mem).unwrap();
            assert_eq!(report.generation, 0);
            assert!(!report.snapshot_loaded);
            let car = store.intern_class("car");
            store.append_delta(car, 3, 2, 1, 0).unwrap();
            store.append_delta(car, 5, -1, 1, 0).unwrap();
            store.append_result(car, 101, 7, 0).unwrap();
            store.commit_stage(0).unwrap();
            store.append_delta(car, 3, 1, 1, 1).unwrap();
            store.commit_stage(1).unwrap();
            store.state().clone()
        };
        let (reopened, report) = open_mem(&files);
        assert_eq!(reopened.state(), &state);
        assert_eq!(report.last_committed_stage, Some(1));
        assert_eq!(report.torn_tail_bytes, 0);
        assert!(report.records_replayed > 0);
        assert_eq!(
            reopened.state().belief(0, 3),
            Some(BeliefCell { n1: 3, samples: 2 })
        );
        assert_eq!(reopened.state().result_count(0), 1);
    }

    #[test]
    fn uncommitted_records_do_not_survive_reopen() {
        let mem = MemStorage::new();
        let files = mem.files();
        {
            let (mut store, _) = BeliefStore::open(mem).unwrap();
            let car = store.intern_class("car");
            store.append_delta(car, 0, 5, 1, 0).unwrap();
            store.commit_stage(0).unwrap();
            // Staged but never committed:
            store.append_delta(car, 0, 100, 1, 1).unwrap();
            assert_eq!(store.pending_records(), 1);
        }
        let (reopened, _) = open_mem(&files);
        assert_eq!(
            reopened.state().belief(0, 0),
            Some(BeliefCell { n1: 5, samples: 1 })
        );
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let mem = MemStorage::new();
        let files = mem.files();
        {
            let (mut store, _) = BeliefStore::open(mem).unwrap();
            let car = store.intern_class("car");
            store.append_delta(car, 1, 1, 1, 0).unwrap();
            store.commit_stage(0).unwrap();
        }
        // Simulate a kill mid-append: garbage on the log tail.
        let torn_len = {
            let mut f = files.lock().unwrap();
            let log = f.get_mut(LOG).unwrap();
            log.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
            log.len()
        };
        let (reopened, report) = open_mem(&files);
        assert_eq!(report.torn_tail_bytes, 3);
        assert_eq!(
            reopened.state().belief(0, 1),
            Some(BeliefCell { n1: 1, samples: 1 })
        );
        // The log was physically repaired.
        assert_eq!(files.lock().unwrap().get(LOG).unwrap().len(), torn_len - 3);
        // A second open is clean: recovery is idempotent.
        let (_, second) = open_mem(&files);
        assert_eq!(second.torn_tail_bytes, 0);
    }

    #[test]
    fn compaction_snapshots_state_and_restarts_the_log() {
        let mem = MemStorage::new();
        let files = mem.files();
        let state = {
            let (mut store, _) = BeliefStore::open(mem).unwrap();
            store.set_compact_every(2);
            let car = store.intern_class("car");
            for stage in 0..5u64 {
                store
                    .append_delta(car, (stage % 3) as u32, 1, 1, stage)
                    .unwrap();
                store.commit_stage(stage).unwrap();
            }
            assert!(store.health().snapshot_compactions >= 2);
            assert_eq!(store.generation(), store.health().snapshot_compactions);
            store.state().clone()
        };
        {
            let f = files.lock().unwrap();
            assert!(f.contains_key(SNAPSHOT));
            assert!(!f.contains_key(SNAPSHOT_TMP));
        }
        let (reopened, report) = open_mem(&files);
        assert!(report.snapshot_loaded);
        assert_eq!(reopened.state(), &state);
        assert_eq!(report.last_committed_stage, Some(4));
    }

    #[test]
    fn stale_generation_log_is_never_double_applied() {
        let mem = MemStorage::new();
        let files = mem.files();
        let (state, old_log) = {
            let (mut store, _) = BeliefStore::open(mem).unwrap();
            let car = store.intern_class("car");
            store.append_delta(car, 0, 7, 1, 0).unwrap();
            store.commit_stage(0).unwrap();
            let old_log = files.lock().unwrap().get(LOG).unwrap().clone();
            store.checkpoint().unwrap();
            (store.state().clone(), old_log)
        };
        // Simulate the crash window between snapshot-rename and
        // log-truncate: the new snapshot is live but the old log is intact.
        files.lock().unwrap().insert(LOG.to_string(), old_log);
        let (reopened, report) = open_mem(&files);
        assert_eq!(
            reopened.state(),
            &state,
            "stale log must be skipped, not re-applied"
        );
        assert_eq!(report.records_replayed, 0);
        assert!(report.torn_tail_bytes > 0, "the stale log was discarded");
    }

    #[test]
    fn unknown_class_is_a_typed_error() {
        let (mut store, _) = BeliefStore::open(MemStorage::new()).unwrap();
        assert!(matches!(
            store.append_delta(9, 0, 1, 1, 0),
            Err(StoreError::InvalidRecord { .. })
        ));
        assert!(matches!(
            store.append_result(9, 0, 0, 0),
            Err(StoreError::InvalidRecord { .. })
        ));
    }

    #[test]
    fn intern_is_idempotent_and_survives_compaction() {
        let mem = MemStorage::new();
        let files = mem.files();
        {
            let (mut store, _) = BeliefStore::open(mem).unwrap();
            assert_eq!(store.intern_class("car"), 0);
            assert_eq!(store.intern_class("person"), 1);
            assert_eq!(store.intern_class("car"), 0);
            store.commit_stage(0).unwrap();
            store.checkpoint().unwrap();
        }
        let (store, _) = open_mem(&files);
        assert_eq!(store.state().classes(), ["car", "person"]);
        assert_eq!(store.state().class_id("person"), Some(1));
    }
}
