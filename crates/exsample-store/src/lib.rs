//! Crash-safe durable belief store for the ExSample reproduction.
//!
//! ExSample's entire edge is its per-chunk posterior `(N1, n)` statistics —
//! and without this crate every run throws them away.  `exsample-store`
//! persists per-(detector-class, chunk) belief deltas and distinct query
//! results to an append-only record log with length+CRC32 framing, compacts
//! the log into snapshots via temp-write → fsync → atomic rename, and
//! recovers from crashes by validating checksums, truncating torn tails and
//! replaying the surviving log onto the latest snapshot.  A warm-started
//! query seeds its Thompson-sampling prior from the recovered state instead
//! of starting cold.
//!
//! Robustness is proved, not claimed: all I/O goes through the [`Storage`]
//! seam (real [`FsStorage`], in-memory [`MemStorage`]), and the seeded
//! [`FaultInjectingStorage`] — the storage twin of the detector stack's
//! `FaultInjectingDetector` — injects short writes, transient I/O errors and
//! crash points from a pure per-`(op, attempt)` schedule.  The crate's test
//! suite kills a run at **every** mutating write boundary, recovers, resumes
//! and asserts the final merged state is bitwise-identical to an
//! uninterrupted run; a prefix-recovery property test asserts every byte
//! prefix of a valid log recovers to a consistent state without panicking.
//!
//! See the README for the on-disk format and recovery rules.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fault;
mod record;
mod storage;
mod store;

pub use error::StoreError;
pub use fault::{FaultInjectingStorage, StorageFaultMonitor, StoragePlan};
pub use record::{crc32, encode_frames, next_frame, FrameScan, Record, FRAME_HEADER, MAX_PAYLOAD};
pub use storage::{FsStorage, MemFiles, MemStorage, Storage};
pub use store::{BeliefCell, BeliefState, BeliefStore, RecoveryReport, ResultCell, StoreHealth};
