//! Typed, chainable errors for the durable belief store.
//!
//! Every variant is `Clone + PartialEq + Eq` so callers that already derive
//! those (e.g. `exsample-sim`'s `SimError`) can wrap a [`StoreError`] without
//! giving their own derives up.  I/O failures therefore carry the
//! [`std::io::ErrorKind`] plus the rendered message rather than the raw
//! (non-`Clone`) `std::io::Error`.

use std::fmt;

/// An error raised by the store or one of its [`Storage`](crate::Storage)
/// backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O operation failed.  `kind == ErrorKind::Interrupted` marks the
    /// failure as transient (the store's durable helpers retry it); every
    /// other kind is permanent and surfaces immediately.
    Io {
        /// Which storage operation failed (`"append"`, `"rename"`, ...).
        op: &'static str,
        /// The file the operation targeted.
        file: String,
        /// The underlying I/O error kind.
        kind: std::io::ErrorKind,
        /// The rendered underlying error message.
        message: String,
    },
    /// A snapshot file failed validation.  Snapshots are written atomically
    /// (temp + fsync + rename), so unlike a torn log tail this is never
    /// expected and recovery refuses to guess.
    CorruptSnapshot {
        /// Byte offset of the first invalid frame.
        offset: u64,
        /// What was wrong with it.
        detail: String,
    },
    /// The storage backend simulated a crash: the process is considered dead
    /// and every further operation fails.  Only [`FaultInjectingStorage`]
    /// (crate::FaultInjectingStorage) raises this.
    Crashed {
        /// The mutating-operation index at which the crash fired.
        op: u64,
    },
    /// A durable write kept failing transiently past the retry budget.
    RetriesExhausted {
        /// Which storage operation was being retried.
        op: &'static str,
        /// The file the operation targeted.
        file: String,
        /// How many attempts were made.
        attempts: u32,
        /// The last transient failure.
        source: Box<StoreError>,
    },
    /// A record inside a CRC-valid frame referenced an unknown class id, or a
    /// snapshot/log invariant did not hold after decode.
    InvalidRecord {
        /// What was wrong with it.
        detail: String,
    },
}

impl StoreError {
    /// Build an [`StoreError::Io`] from a real `std::io::Error`.
    pub fn io(op: &'static str, file: &str, err: &std::io::Error) -> Self {
        StoreError::Io {
            op,
            file: file.to_string(),
            kind: err.kind(),
            message: err.to_string(),
        }
    }

    /// Whether the durable-write helpers should retry this failure.
    ///
    /// Transient means `Io` with `ErrorKind::Interrupted` — the kind the
    /// fault injector uses for its scheduled flaky-disk errors, and the kind
    /// POSIX promises is safe to retry.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StoreError::Io {
                kind: std::io::ErrorKind::Interrupted,
                ..
            }
        )
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                op,
                file,
                kind,
                message,
            } => write!(f, "storage {op} on {file:?} failed ({kind:?}): {message}"),
            StoreError::CorruptSnapshot { offset, detail } => {
                write!(f, "corrupt snapshot at byte {offset}: {detail}")
            }
            StoreError::Crashed { op } => {
                write!(f, "storage crashed at mutating operation {op}")
            }
            StoreError::RetriesExhausted {
                op, file, attempts, ..
            } => write!(
                f,
                "storage {op} on {file:?} still failing after {attempts} attempts"
            ),
            StoreError::InvalidRecord { detail } => {
                write!(f, "invalid record: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::RetriesExhausted { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source_are_wired() {
        let transient = StoreError::Io {
            op: "append",
            file: "log".to_string(),
            kind: std::io::ErrorKind::Interrupted,
            message: "injected".to_string(),
        };
        assert!(transient.is_transient());
        assert!(transient.to_string().contains("append"));

        let exhausted = StoreError::RetriesExhausted {
            op: "append",
            file: "log".to_string(),
            attempts: 8,
            source: Box::new(transient.clone()),
        };
        assert_eq!(
            exhausted.source().map(ToString::to_string),
            Some(transient.to_string())
        );
        assert!(!exhausted.is_transient());

        let crash = StoreError::Crashed { op: 3 };
        assert!(crash.to_string().contains('3'));
        assert!(StoreError::io(
            "read",
            "snapshot",
            &std::io::Error::new(std::io::ErrorKind::NotFound, "gone")
        )
        .to_string()
        .contains("snapshot"));
    }
}
