//! The storage seam: a small file-system abstraction the store writes
//! through.
//!
//! Mirroring the detector stack's `Detector` / `FaultInjectingDetector`
//! split, the store never touches `std::fs` directly — it drives a
//! [`Storage`] trait with a real [`FsStorage`] backend, an in-memory
//! [`MemStorage`] backend for tests, and a seeded fault-injecting wrapper
//! ([`FaultInjectingStorage`](crate::FaultInjectingStorage)) in between when
//! robustness is under test.
//!
//! File names are flat (no directories): the store uses `"log"`,
//! `"snapshot"` and `"snapshot.tmp"` inside a single store directory.

use crate::error::StoreError;
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// A minimal, fault-injectable file-system surface.
///
/// Contract details the store relies on:
///
/// * [`read`](Storage::read) of a missing file is `Ok(None)`, not an error;
/// * [`append`](Storage::append) and [`write`](Storage::write) return the
///   number of bytes actually written — a short count is legal and the
///   caller must roll back and retry;
/// * [`rename`](Storage::rename) replaces the destination atomically;
/// * [`begin_op`](Storage::begin_op) marks the start of one *logical*
///   operation so fault injectors can count retries of the same operation
///   separately from new operations.  The default is a no-op.
pub trait Storage: Send {
    /// Mark the start of one logical operation (see trait docs).
    fn begin_op(&mut self) {}

    /// Read a whole file; `Ok(None)` if it does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError>;

    /// Length of a file in bytes; `Ok(None)` if it does not exist.
    fn len(&self, name: &str) -> Result<Option<u64>, StoreError>;

    /// Append bytes to a file (creating it), returning how many were
    /// actually written.
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<usize, StoreError>;

    /// Replace a file's contents, returning how many bytes were written.
    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<usize, StoreError>;

    /// Flush a file's data to durable media (fsync).
    fn sync(&mut self, name: &str) -> Result<(), StoreError>;

    /// Atomically rename `from` over `to`.
    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError>;

    /// Remove a file; removing a missing file is `Ok(())`.
    fn remove(&mut self, name: &str) -> Result<(), StoreError>;

    /// Truncate a file to `len` bytes (creating it empty if missing).
    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StoreError>;
}

/// Real `std::fs` backend rooted at a directory.
#[derive(Debug)]
pub struct FsStorage {
    root: PathBuf,
}

impl FsStorage {
    /// Open (creating if necessary) a store directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| StoreError::io("create_dir", &root.display().to_string(), &e))?;
        Ok(FsStorage { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Storage for FsStorage {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StoreError::io("read", name, &e)),
        }
    }

    fn len(&self, name: &str) -> Result<Option<u64>, StoreError> {
        match std::fs::metadata(self.path(name)) {
            Ok(meta) => Ok(Some(meta.len())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StoreError::io("len", name, &e)),
        }
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<usize, StoreError> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .map_err(|e| StoreError::io("append", name, &e))?;
        file.write_all(bytes)
            .map_err(|e| StoreError::io("append", name, &e))?;
        Ok(bytes.len())
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<usize, StoreError> {
        std::fs::write(self.path(name), bytes).map_err(|e| StoreError::io("write", name, &e))?;
        Ok(bytes.len())
    }

    fn sync(&mut self, name: &str) -> Result<(), StoreError> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .open(self.path(name))
            .map_err(|e| StoreError::io("sync", name, &e))?;
        file.sync_all()
            .map_err(|e| StoreError::io("sync", name, &e))
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        std::fs::rename(self.path(from), self.path(to))
            .map_err(|e| StoreError::io("rename", from, &e))
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::io("remove", name, &e)),
        }
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StoreError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(self.path(name))
            .map_err(|e| StoreError::io("truncate", name, &e))?;
        file.set_len(len)
            .map_err(|e| StoreError::io("truncate", name, &e))
    }
}

/// Shared byte map behind [`MemStorage`] — clone the handle to observe (or
/// keep, across a simulated process death) the files a store wrote.
pub type MemFiles = Arc<Mutex<HashMap<String, Vec<u8>>>>;

/// In-memory backend for tests: a `HashMap<String, Vec<u8>>` behind an
/// `Arc<Mutex>` so a "crashed" store's surviving bytes can be reopened by a
/// fresh store, exactly as a restarted process would reopen real files.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    files: MemFiles,
}

impl MemStorage {
    /// Fresh, empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Storage over an existing byte map (e.g. the survivor of a crash).
    pub fn with_files(files: MemFiles) -> Self {
        MemStorage { files }
    }

    /// Handle to the underlying byte map.
    pub fn files(&self) -> MemFiles {
        Arc::clone(&self.files)
    }
}

impl Storage for MemStorage {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.files.lock().unwrap().get(name).cloned())
    }

    fn len(&self, name: &str) -> Result<Option<u64>, StoreError> {
        Ok(self.files.lock().unwrap().get(name).map(|b| b.len() as u64))
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<usize, StoreError> {
        self.files
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(bytes.len())
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<usize, StoreError> {
        self.files
            .lock()
            .unwrap()
            .insert(name.to_string(), bytes.to_vec());
        Ok(bytes.len())
    }

    fn sync(&mut self, _name: &str) -> Result<(), StoreError> {
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        let mut files = self.files.lock().unwrap();
        match files.remove(from) {
            Some(bytes) => {
                files.insert(to.to_string(), bytes);
                Ok(())
            }
            None => Err(StoreError::Io {
                op: "rename",
                file: from.to_string(),
                kind: std::io::ErrorKind::NotFound,
                message: "no such file".to_string(),
            }),
        }
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        self.files.lock().unwrap().remove(name);
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StoreError> {
        let mut files = self.files.lock().unwrap();
        let bytes = files.entry(name.to_string()).or_default();
        bytes.truncate(len as usize);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(storage: &mut dyn Storage) {
        assert_eq!(storage.read("log").unwrap(), None);
        assert_eq!(storage.len("log").unwrap(), None);
        assert_eq!(storage.append("log", b"abc").unwrap(), 3);
        assert_eq!(storage.append("log", b"def").unwrap(), 3);
        assert_eq!(storage.read("log").unwrap().unwrap(), b"abcdef");
        assert_eq!(storage.len("log").unwrap(), Some(6));
        storage.truncate("log", 4).unwrap();
        assert_eq!(storage.read("log").unwrap().unwrap(), b"abcd");
        assert_eq!(storage.write("tmp", b"xyz").unwrap(), 3);
        storage.sync("tmp").unwrap();
        storage.rename("tmp", "snap").unwrap();
        assert_eq!(storage.read("snap").unwrap().unwrap(), b"xyz");
        assert_eq!(storage.read("tmp").unwrap(), None);
        storage.remove("snap").unwrap();
        storage.remove("snap").unwrap(); // removing a missing file is fine
        assert_eq!(storage.read("snap").unwrap(), None);
    }

    #[test]
    fn mem_storage_honours_the_contract() {
        exercise(&mut MemStorage::new());
    }

    #[test]
    fn fs_storage_honours_the_contract() {
        let dir = std::env::temp_dir().join(format!(
            "exsample-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        exercise(&mut FsStorage::open(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_storage_files_survive_the_handle() {
        let storage = MemStorage::new();
        let files = storage.files();
        {
            let mut s = storage.clone();
            s.append("log", b"survivor").unwrap();
        }
        let reopened = MemStorage::with_files(files);
        assert_eq!(reopened.read("log").unwrap().unwrap(), b"survivor");
    }
}
