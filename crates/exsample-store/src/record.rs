//! Log/snapshot record model and the length+CRC32 frame codec.
//!
//! # On-disk framing
//!
//! Both the append-only log and the snapshot file are a sequence of frames:
//!
//! ```text
//! ┌────────────┬─────────────┬───────────────┐
//! │ len: u32LE │ crc32: u32LE │ payload[len]  │
//! └────────────┴─────────────┴───────────────┘
//! ```
//!
//! `crc32` is CRC-32/IEEE over the payload bytes only.  A frame whose header
//! is incomplete, whose payload extends past the end of the file, whose CRC
//! does not match, or whose payload does not decode is a **torn tail**: it and
//! everything after it are discarded by recovery.  Because every byte of a
//! record is covered by its frame's CRC, a partial write can never smuggle a
//! half-record into the replayed state.
//!
//! # Payload encoding
//!
//! One tag byte followed by little-endian fixed-width fields; strings are a
//! `u32` length plus UTF-8 bytes.  The codec is pinned by an exhaustive
//! round-trip property test (`tests/prefix_recovery.rs`).

/// Maximum frame payload the decoder will accept (defence against a corrupt
/// length field making recovery allocate gigabytes).
pub const MAX_PAYLOAD: u32 = 1 << 24;

/// Bytes of framing overhead per record (length + CRC).
pub const FRAME_HEADER: usize = 8;

/// One durable record.  `BeliefDelta`, `ResultFound` and `StageCommit` are
/// log records; `SnapshotHeader` and `BeliefTotal` appear only in snapshots;
/// `Generation` appears only as the first frame of a freshly compacted log;
/// `ClassName` appears in both files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// First frame of a snapshot: the compaction generation that produced it
    /// and the last committed stage it covers.
    SnapshotHeader {
        /// Monotonic compaction counter.
        generation: u64,
        /// Highest stage folded into this snapshot, if any stage committed.
        last_stage: Option<u64>,
    },
    /// First frame of the log after a compaction: ties the log to the
    /// snapshot generation it extends.  Replay ignores records until it sees
    /// the marker matching the live snapshot, which makes a crash between
    /// snapshot-rename and log-truncate safe (the stale log prefix carries
    /// the old generation and is skipped, never double-applied).
    Generation {
        /// The snapshot generation this log extends.
        generation: u64,
    },
    /// Interns a detector-class name to a dense id used by the other records.
    ClassName {
        /// Dense id, assigned in first-seen order.
        class: u32,
        /// The detector class name (e.g. `"car"`).
        name: String,
    },
    /// One observed frame's belief update for a `(class, chunk)` cell.
    BeliefDelta {
        /// Interned class id.
        class: u32,
        /// Chunk index within the dataset's chunking.
        chunk: u32,
        /// Signed change to the chunk's `N1` statistic.
        n1_delta: i64,
        /// Number of samples charged (1 per observed frame).
        samples_delta: u64,
        /// Stage the observation belongs to.
        stage: u64,
    },
    /// Absolute `(class, chunk)` totals, as stored in a snapshot.
    BeliefTotal {
        /// Interned class id.
        class: u32,
        /// Chunk index.
        chunk: u32,
        /// Absolute `N1`.
        n1: i64,
        /// Absolute sample count `n`.
        samples: u64,
    },
    /// A distinct ground-truth instance found for a class.
    ResultFound {
        /// Interned class id.
        class: u32,
        /// Frame the instance was first found on.
        frame: u64,
        /// Ground-truth instance id.
        instance: u64,
        /// Stage the find belongs to.
        stage: u64,
    },
    /// Commit marker: every record of `stage` written before this frame is
    /// durable.  Recovery folds records into state only up to the last
    /// `StageCommit`; a valid-but-uncommitted suffix is truncated with the
    /// torn tail.
    StageCommit {
        /// The committed stage.
        stage: u64,
    },
}

const TAG_SNAPSHOT_HEADER: u8 = 1;
const TAG_GENERATION: u8 = 2;
const TAG_CLASS_NAME: u8 = 3;
const TAG_BELIEF_DELTA: u8 = 4;
const TAG_BELIEF_TOTAL: u8 = 5;
const TAG_RESULT_FOUND: u8 = 6;
const TAG_STAGE_COMMIT: u8 = 7;

/// CRC-32/IEEE lookup table, built at compile time (no external crate: the
/// container is offline).
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32/IEEE of `bytes` (the polynomial `zip`/`png`/`gzip` use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|s| i64::from_le_bytes(s.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl Record {
    /// Encode the payload (no framing) into `out`.
    pub fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Record::SnapshotHeader {
                generation,
                last_stage,
            } => {
                out.push(TAG_SNAPSHOT_HEADER);
                put_u64(out, *generation);
                match last_stage {
                    Some(stage) => {
                        out.push(1);
                        put_u64(out, *stage);
                    }
                    None => out.push(0),
                }
            }
            Record::Generation { generation } => {
                out.push(TAG_GENERATION);
                put_u64(out, *generation);
            }
            Record::ClassName { class, name } => {
                out.push(TAG_CLASS_NAME);
                put_u32(out, *class);
                put_u32(out, name.len() as u32);
                out.extend_from_slice(name.as_bytes());
            }
            Record::BeliefDelta {
                class,
                chunk,
                n1_delta,
                samples_delta,
                stage,
            } => {
                out.push(TAG_BELIEF_DELTA);
                put_u32(out, *class);
                put_u32(out, *chunk);
                put_i64(out, *n1_delta);
                put_u64(out, *samples_delta);
                put_u64(out, *stage);
            }
            Record::BeliefTotal {
                class,
                chunk,
                n1,
                samples,
            } => {
                out.push(TAG_BELIEF_TOTAL);
                put_u32(out, *class);
                put_u32(out, *chunk);
                put_i64(out, *n1);
                put_u64(out, *samples);
            }
            Record::ResultFound {
                class,
                frame,
                instance,
                stage,
            } => {
                out.push(TAG_RESULT_FOUND);
                put_u32(out, *class);
                put_u64(out, *frame);
                put_u64(out, *instance);
                put_u64(out, *stage);
            }
            Record::StageCommit { stage } => {
                out.push(TAG_STAGE_COMMIT);
                put_u64(out, *stage);
            }
        }
    }

    /// Decode one payload.  `None` means the payload is malformed — the
    /// framing layer treats that the same as a CRC mismatch.
    pub fn decode_payload(payload: &[u8]) -> Option<Record> {
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        let record = match c.u8()? {
            TAG_SNAPSHOT_HEADER => {
                let generation = c.u64()?;
                let last_stage = match c.u8()? {
                    0 => None,
                    1 => Some(c.u64()?),
                    _ => return None,
                };
                Record::SnapshotHeader {
                    generation,
                    last_stage,
                }
            }
            TAG_GENERATION => Record::Generation {
                generation: c.u64()?,
            },
            TAG_CLASS_NAME => {
                let class = c.u32()?;
                let len = c.u32()? as usize;
                let name = String::from_utf8(c.take(len)?.to_vec()).ok()?;
                Record::ClassName { class, name }
            }
            TAG_BELIEF_DELTA => Record::BeliefDelta {
                class: c.u32()?,
                chunk: c.u32()?,
                n1_delta: c.i64()?,
                samples_delta: c.u64()?,
                stage: c.u64()?,
            },
            TAG_BELIEF_TOTAL => Record::BeliefTotal {
                class: c.u32()?,
                chunk: c.u32()?,
                n1: c.i64()?,
                samples: c.u64()?,
            },
            TAG_RESULT_FOUND => Record::ResultFound {
                class: c.u32()?,
                frame: c.u64()?,
                instance: c.u64()?,
                stage: c.u64()?,
            },
            TAG_STAGE_COMMIT => Record::StageCommit { stage: c.u64()? },
            _ => return None,
        };
        c.done().then_some(record)
    }

    /// Append the full frame (header + payload) for this record to `out`.
    pub fn encode_frame(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::with_capacity(40);
        self.encode_payload(&mut payload);
        put_u32(out, payload.len() as u32);
        put_u32(out, crc32(&payload));
        out.extend_from_slice(&payload);
    }
}

/// Encode a batch of records as consecutive frames.
pub fn encode_frames(records: &[Record]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * 48);
    for record in records {
        record.encode_frame(&mut out);
    }
    out
}

/// What [`next_frame`] found at an offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameScan {
    /// A valid frame; `next` is the offset just past it.
    Complete {
        /// The decoded record.
        record: Record,
        /// Offset of the next frame.
        next: usize,
    },
    /// The bytes from this offset on are not a valid frame (incomplete
    /// header, truncated payload, CRC mismatch, oversized length or
    /// undecodable payload).  Recovery truncates here.
    Torn,
    /// Clean end of input.
    End,
}

/// Scan one frame starting at `pos`.
pub fn next_frame(buf: &[u8], pos: usize) -> FrameScan {
    if pos == buf.len() {
        return FrameScan::End;
    }
    let Some(header) = buf.get(pos..pos + FRAME_HEADER) else {
        return FrameScan::Torn;
    };
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return FrameScan::Torn;
    }
    let start = pos + FRAME_HEADER;
    let Some(payload) = buf.get(start..start + len as usize) else {
        return FrameScan::Torn;
    };
    if crc32(payload) != crc {
        return FrameScan::Torn;
    }
    match Record::decode_payload(payload) {
        Some(record) => FrameScan::Complete {
            record,
            next: start + len as usize,
        },
        None => FrameScan::Torn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::SnapshotHeader {
                generation: 3,
                last_stage: Some(41),
            },
            Record::SnapshotHeader {
                generation: 0,
                last_stage: None,
            },
            Record::Generation { generation: 7 },
            Record::ClassName {
                class: 0,
                name: "person".to_string(),
            },
            Record::BeliefDelta {
                class: 0,
                chunk: 12,
                n1_delta: -2,
                samples_delta: 1,
                stage: 9,
            },
            Record::BeliefTotal {
                class: 1,
                chunk: 3,
                n1: 17,
                samples: 40,
            },
            Record::ResultFound {
                class: 0,
                frame: 88_123,
                instance: 5,
                stage: 9,
            },
            Record::StageCommit { stage: 9 },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_record_kind_round_trips_through_a_frame() {
        for record in samples() {
            let mut buf = Vec::new();
            record.encode_frame(&mut buf);
            match next_frame(&buf, 0) {
                FrameScan::Complete { record: out, next } => {
                    assert_eq!(out, record);
                    assert_eq!(next, buf.len());
                }
                other => panic!("expected a complete frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn batches_scan_back_in_order() {
        let records = samples();
        let buf = encode_frames(&records);
        let mut pos = 0;
        let mut seen = Vec::new();
        loop {
            match next_frame(&buf, pos) {
                FrameScan::Complete { record, next } => {
                    seen.push(record);
                    pos = next;
                }
                FrameScan::End => break,
                FrameScan::Torn => panic!("valid batch scanned as torn at {pos}"),
            }
        }
        assert_eq!(seen, records);
    }

    #[test]
    fn flipped_bit_and_truncation_read_as_torn() {
        let buf = encode_frames(&samples());
        // Any strict prefix that cuts a frame is torn, never a panic.
        for cut in 1..buf.len() {
            match next_frame(&buf[..cut], 0) {
                FrameScan::Complete { .. } | FrameScan::Torn => {}
                FrameScan::End => panic!("non-empty prefix scanned as clean end"),
            }
        }
        // A flipped payload bit fails the CRC.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let mut pos = 0;
        let mut torn = false;
        loop {
            match next_frame(&bad, pos) {
                FrameScan::Complete { next, .. } => pos = next,
                FrameScan::Torn => {
                    torn = true;
                    break;
                }
                FrameScan::End => break,
            }
        }
        assert!(torn, "bit flip went unnoticed");
    }

    #[test]
    fn oversized_length_field_is_torn_not_an_allocation() {
        let mut buf = Vec::new();
        put_u32(&mut buf, MAX_PAYLOAD + 1);
        put_u32(&mut buf, 0);
        assert_eq!(next_frame(&buf, 0), FrameScan::Torn);
    }
}
