//! The crash-at-every-write-boundary matrix.
//!
//! A deterministic multi-stage workload runs once uninterrupted to produce
//! the reference state and to count how many mutating storage calls the run
//! makes.  Then, for **every** mutating call index `k`, a fresh run is
//! killed at `k` (the injector applies a partial write where one exists —
//! the torn tail — and fails everything after), the surviving bytes are
//! reopened by a fresh store exactly as a restarted process would reopen
//! real files, the run resumes from the last committed stage, and the final
//! merged state must be bitwise-identical to the uninterrupted run.
//!
//! A second matrix runs the same workload under flaky-but-not-fatal storage
//! (transient errors + short writes) and asserts the degraded run is both
//! correct and bitwise-reproducible, PR 6-style.

use exsample_store::{
    BeliefState, BeliefStore, FaultInjectingStorage, MemFiles, MemStorage, StoragePlan, StoreError,
};
use std::sync::Arc;

const STAGES: u64 = 24;
const COMPACT_EVERY: u64 = 4;

/// Deterministic per-stage workload: which deltas and results stage `s`
/// stages before committing.  Pure arithmetic — no RNG — so every run, in
/// every test, agrees on it.
fn apply_stage(store: &mut BeliefStore, stage: u64) -> Result<(), StoreError> {
    let car = store.intern_class("car");
    let person = store.intern_class("person");
    for i in 0..3u64 {
        let chunk = ((stage * 3 + i) % 7) as u32;
        let n1_delta = ((stage + i) % 3) as i64 - 1; // -1, 0, or 1
        store.append_delta(car, chunk, n1_delta, 1, stage)?;
    }
    if stage.is_multiple_of(2) {
        store.append_delta(person, (stage % 5) as u32, 1, 1, stage)?;
    }
    if stage % 4 == 1 {
        store.append_result(car, stage * 100, stage, stage)?;
    }
    store.commit_stage(stage)
}

/// Run stages `[from, STAGES)`; `Err` means the storage crashed mid-run.
fn run_stages(store: &mut BeliefStore, from: u64) -> Result<(), StoreError> {
    for stage in from..STAGES {
        apply_stage(store, stage)?;
    }
    Ok(())
}

fn open_with_plan(
    files: &MemFiles,
    plan: StoragePlan,
) -> Result<(BeliefStore, exsample_store::StorageFaultMonitor), StoreError> {
    let storage = FaultInjectingStorage::new(MemStorage::with_files(Arc::clone(files)), plan);
    let monitor = storage.monitor();
    let (mut store, _) = BeliefStore::open(storage)?;
    store.set_compact_every(COMPACT_EVERY);
    Ok((store, monitor))
}

/// The uninterrupted reference: final state plus the mutating-call count
/// that defines the crash matrix.
fn reference() -> (BeliefState, u64) {
    let files = MemStorage::new().files();
    let (mut store, monitor) =
        open_with_plan(&files, StoragePlan::new(0)).expect("zero-fault open cannot fail");
    run_stages(&mut store, 0).expect("zero-fault run cannot crash");
    assert!(
        store.health().snapshot_compactions >= 2,
        "the workload must exercise compaction inside the matrix"
    );
    (store.state().clone(), monitor.mutations())
}

#[test]
fn recover_and_resume_is_bitwise_identical_at_every_crash_point() {
    let (expected, total_ops) = reference();
    assert!(total_ops > 50, "matrix unexpectedly small: {total_ops} ops");

    for crash_at in 0..total_ops {
        let files = MemStorage::new().files();
        let plan = StoragePlan::new(0).crash_at(crash_at);

        // Phase 1: run until the kill.  The crash can land inside open()
        // itself (its recovery bootstrap writes a generation marker), inside
        // a stage commit, or inside a compaction.
        let crashed = match open_with_plan(&files, plan) {
            Err(e) => {
                assert!(
                    matches!(e, StoreError::Crashed { .. }),
                    "open failed with a non-crash error at op {crash_at}: {e}"
                );
                true
            }
            Ok((mut store, monitor)) => match run_stages(&mut store, 0) {
                Err(e) => {
                    assert!(
                        matches!(e, StoreError::Crashed { .. }),
                        "run failed with a non-crash error at op {crash_at}: {e}"
                    );
                    true
                }
                Ok(()) => {
                    assert!(!monitor.has_crashed());
                    false
                }
            },
        };
        assert!(crashed, "crash point {crash_at} < {total_ops} never fired");

        // Phase 2: the process restarts — clean storage over the surviving
        // bytes — recovers, and resumes from the last committed stage.
        let (mut store, report) = BeliefStore::open(MemStorage::with_files(Arc::clone(&files)))
            .unwrap_or_else(|e| panic!("recovery after crash at op {crash_at} failed: {e}"));
        store.set_compact_every(COMPACT_EVERY);
        let resume_from = report.last_committed_stage.map_or(0, |s| s + 1);
        assert!(
            resume_from <= STAGES,
            "recovered stage cursor {resume_from} past the workload at op {crash_at}"
        );
        run_stages(&mut store, resume_from)
            .unwrap_or_else(|e| panic!("clean resume after crash at op {crash_at} failed: {e}"));

        assert_eq!(
            store.state(),
            &expected,
            "crash at op {crash_at}: recovered+resumed state diverged \
             (resumed from stage {resume_from}, recovery report {report:?})"
        );
    }
}

#[test]
fn flaky_storage_run_is_correct_and_reproducible() {
    let (expected, _) = reference();
    let plan = StoragePlan::new(42)
        .transient_rate(0.35)
        .short_write_rate(0.35)
        .transient_attempts(2);

    let run = || {
        let files = MemStorage::new().files();
        let (mut store, monitor) = open_with_plan(&files, plan).expect("flaky open should survive");
        run_stages(&mut store, 0).expect("flaky run should survive retries");
        (store.state().clone(), store.health(), monitor)
    };

    let (state_a, health_a, monitor_a) = run();
    let (state_b, health_b, _) = run();

    assert_eq!(
        state_a, expected,
        "retried faults must not change the state"
    );
    assert_eq!(state_a, state_b);
    assert_eq!(
        health_a, health_b,
        "degraded behaviour must be reproducible"
    );
    assert!(
        monitor_a.injected_transients() > 0 && monitor_a.injected_short_writes() > 0,
        "the flaky plan should actually inject ({} transients, {} shorts)",
        monitor_a.injected_transients(),
        monitor_a.injected_short_writes()
    );
    assert_eq!(
        health_a.io_retries,
        monitor_a.injected_transients() + monitor_a.injected_short_writes(),
        "every injected fault should be visible as a retry tally"
    );
    assert_eq!(health_a.torn_tail_bytes, 0, "no crash, no torn tail");
}

#[test]
fn a_doubly_interrupted_run_still_converges() {
    // Crash, resume under a *second* crash, resume again: recovery must
    // compose.  Pick two mid-run crash points from the reference op count.
    let (expected, total_ops) = reference();
    let first = total_ops / 3;

    let files = MemStorage::new().files();
    let outcome = open_with_plan(&files, StoragePlan::new(0).crash_at(first))
        .map(|(mut store, _)| run_stages(&mut store, 0));
    assert!(matches!(outcome, Ok(Err(StoreError::Crashed { .. }))));

    // Second life: crash again a little further in (fresh injector, fresh
    // op numbering — any index works as long as it fires mid-run).
    let resume_from = {
        let (store, report) = BeliefStore::open(MemStorage::with_files(Arc::clone(&files)))
            .expect("first recovery failed");
        drop(store);
        report.last_committed_stage.map_or(0, |s| s + 1)
    };
    let second_outcome = open_with_plan(&files, StoragePlan::new(1).crash_at(20))
        .map(|(mut store, _)| run_stages(&mut store, resume_from));
    // The second crash may land in open or in the run; either way, recover.
    let crashed_twice = !matches!(second_outcome, Ok(Ok(())));

    let (mut store, report) = BeliefStore::open(MemStorage::with_files(Arc::clone(&files)))
        .expect("second recovery failed");
    store.set_compact_every(COMPACT_EVERY);
    let resume_from = report.last_committed_stage.map_or(0, |s| s + 1);
    run_stages(&mut store, resume_from).expect("final clean resume failed");

    assert_eq!(store.state(), &expected);
    assert!(crashed_twice, "the second crash point never fired");
}
