//! Prefix-recovery property: every byte-prefix of a valid log recovers to a
//! consistent state without panicking — exhaustively over all prefixes of a
//! committed workload (with and without a snapshot present), and
//! property-style over random record batches.  Also the codec round-trip
//! property the satellite asks for: arbitrary belief/result records encode
//! → decode identically.

use exsample_store::{
    encode_frames, next_frame, BeliefCell, BeliefStore, FrameScan, MemStorage, Record,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const STAGES: u64 = 12;

/// Same shape as the crash-matrix workload, kept deliberately tiny: the
/// prefix sweep opens a store once per *byte* of the log.
fn apply_stage(store: &mut BeliefStore, stage: u64) {
    let car = store.intern_class("car");
    let person = store.intern_class("person");
    for i in 0..2u64 {
        let chunk = ((stage * 2 + i) % 5) as u32;
        store
            .append_delta(car, chunk, ((stage + i) % 3) as i64 - 1, 1, stage)
            .unwrap();
    }
    if stage.is_multiple_of(3) {
        store
            .append_delta(person, (stage % 4) as u32, 1, 1, stage)
            .unwrap();
        store
            .append_result(person, stage * 10, stage, stage)
            .unwrap();
    }
    store.commit_stage(stage).unwrap();
}

/// Expected state after stages `0..=last` (`None` = nothing committed),
/// computed independently of the store.
fn expected_state(last: Option<u64>) -> BTreeMap<(u32, u32), BeliefCell> {
    let mut beliefs: BTreeMap<(u32, u32), BeliefCell> = BTreeMap::new();
    let Some(last) = last else {
        return beliefs;
    };
    for stage in 0..=last {
        for i in 0..2u64 {
            let chunk = ((stage * 2 + i) % 5) as u32;
            let cell = beliefs.entry((0, chunk)).or_default();
            cell.n1 += ((stage + i) % 3) as i64 - 1;
            cell.samples += 1;
        }
        if stage % 3 == 0 {
            let cell = beliefs.entry((1, (stage % 4) as u32)).or_default();
            cell.n1 += 1;
            cell.samples += 1;
        }
    }
    beliefs
}

fn sweep_prefixes(files: &exsample_store::MemFiles) {
    let full_log = files
        .lock()
        .unwrap()
        .get("log")
        .cloned()
        .unwrap_or_default();
    let snapshot = files.lock().unwrap().get("snapshot").cloned();
    let mut previous_committed: Option<u64> = None;

    for cut in 0..=full_log.len() {
        let prefix_files = MemStorage::new().files();
        {
            let mut f = prefix_files.lock().unwrap();
            f.insert("log".to_string(), full_log[..cut].to_vec());
            if let Some(snap) = &snapshot {
                f.insert("snapshot".to_string(), snap.clone());
            }
        }
        let (store, report) = BeliefStore::open(MemStorage::with_files(Arc::clone(&prefix_files)))
            .unwrap_or_else(|e| panic!("prefix of {cut} bytes failed recovery: {e}"));

        // Consistency: the recovered state is exactly the state after the
        // stages the prefix committed — never a half-applied stage.
        let last = report.last_committed_stage;
        let recovered: BTreeMap<(u32, u32), BeliefCell> = store.state().beliefs().collect();
        assert_eq!(
            recovered,
            expected_state(last),
            "prefix of {cut}/{} bytes recovered an inconsistent state (report {report:?})",
            full_log.len()
        );

        // Monotonicity: a longer prefix never knows *less*.
        assert!(
            last >= previous_committed,
            "prefix of {cut} bytes lost a committed stage ({last:?} < {previous_committed:?})"
        );
        previous_committed = previous_committed.max(last);

        // Accounting: kept + discarded covers the prefix.
        assert!(report.torn_tail_bytes <= cut as u64);

        // Idempotence: recovery physically repaired the log, so a second
        // open finds nothing left to discard.
        drop(store);
        let (_, second) = BeliefStore::open(MemStorage::with_files(prefix_files))
            .unwrap_or_else(|e| panic!("re-open after prefix {cut} recovery failed: {e}"));
        assert_eq!(
            second.torn_tail_bytes, 0,
            "recovery of prefix {cut} was not idempotent"
        );
        assert_eq!(second.last_committed_stage, last);
    }
}

#[test]
fn every_byte_prefix_of_a_log_only_store_recovers_consistently() {
    let files = MemStorage::new().files();
    {
        let (mut store, _) = BeliefStore::open(MemStorage::with_files(Arc::clone(&files))).unwrap();
        // No compaction: everything stays in the log.
        for stage in 0..STAGES {
            apply_stage(&mut store, stage);
        }
        assert_eq!(store.health().snapshot_compactions, 0);
    }
    sweep_prefixes(&files);
}

#[test]
fn every_byte_prefix_of_a_snapshot_plus_log_store_recovers_consistently() {
    let files = MemStorage::new().files();
    {
        let (mut store, _) = BeliefStore::open(MemStorage::with_files(Arc::clone(&files))).unwrap();
        store.set_compact_every(5);
        for stage in 0..STAGES {
            apply_stage(&mut store, stage);
        }
        assert!(store.health().snapshot_compactions >= 2);
    }
    // The live log extends a snapshot; cutting it anywhere (including
    // through the generation marker) must fall back to the snapshot state.
    sweep_prefixes(&files);
}

/// Strategy-built arbitrary records (the shim has no enum strategy, so draw
/// a tag and fields from integer ranges).
fn record_from(tag: u8, a: u64, b: u64, c: i64, name_len: usize) -> Record {
    let name: String = (0..name_len)
        .map(|i| char::from(b'a' + ((a as usize + i) % 26) as u8))
        .collect();
    match tag % 7 {
        0 => Record::SnapshotHeader {
            generation: a,
            last_stage: b.is_multiple_of(2).then_some(b),
        },
        1 => Record::Generation { generation: a },
        2 => Record::ClassName {
            class: a as u32,
            name,
        },
        3 => Record::BeliefDelta {
            class: a as u32,
            chunk: b as u32,
            n1_delta: c,
            samples_delta: b,
            stage: a,
        },
        4 => Record::BeliefTotal {
            class: a as u32,
            chunk: b as u32,
            n1: c,
            samples: a,
        },
        5 => Record::ResultFound {
            class: a as u32,
            frame: b,
            instance: a ^ b,
            stage: a,
        },
        _ => Record::StageCommit { stage: a },
    }
}

proptest! {
    #[test]
    fn arbitrary_records_round_trip_through_the_codec(
        tags in proptest::collection::vec(0u8..7, 1..40),
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        c in i64::MIN..i64::MAX,
        name_len in 0usize..24,
    ) {
        let records: Vec<Record> = tags
            .iter()
            .enumerate()
            .map(|(i, &tag)| record_from(tag, a.wrapping_add(i as u64), b.wrapping_sub(i as u64), c, name_len))
            .collect();
        let buf = encode_frames(&records);
        let mut pos = 0;
        let mut decoded = Vec::new();
        loop {
            match next_frame(&buf, pos) {
                FrameScan::Complete { record, next } => {
                    decoded.push(record);
                    pos = next;
                }
                FrameScan::End => break,
                FrameScan::Torn => {
                    return Err(TestCaseError::fail(format!("valid batch torn at byte {pos}")));
                }
            }
        }
        prop_assert_eq!(decoded, records);
    }

    #[test]
    fn random_byte_prefixes_of_random_batches_never_panic(
        tags in proptest::collection::vec(0u8..7, 1..20),
        a in 0u64..1_000_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let records: Vec<Record> = tags
            .iter()
            .enumerate()
            .map(|(i, &tag)| record_from(tag, a + i as u64, a ^ 0x5555, -3, 5))
            .collect();
        let buf = encode_frames(&records);
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        let prefix = &buf[..cut.min(buf.len())];
        // Scanning a prefix terminates (Torn or End), never panics, and
        // every complete frame it yields is one of the originals in order.
        let mut pos = 0;
        let mut seen = 0usize;
        loop {
            match next_frame(prefix, pos) {
                FrameScan::Complete { record, next } => {
                    prop_assert_eq!(&record, &records[seen]);
                    seen += 1;
                    pos = next;
                }
                FrameScan::End => {
                    prop_assert_eq!(pos, prefix.len());
                    break;
                }
                FrameScan::Torn => break,
            }
        }
        prop_assert!(seen <= records.len());
    }
}
