//! Property-based tests over the cross-crate invariants the system relies on.

use exsample::core::estimator;
use exsample::data::skewgen;
use exsample::opt::{expected_found, optimal_weights, project_to_simplex, InstanceChunkProbabilities, SolverOptions};
use exsample::rand_ext::{Gamma, Sampler};
use exsample::video::{Chunking, ChunkingPolicy, FrameSampler, RandomPlusSampler, UniformSampler, VideoRepository};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

proptest! {
    /// The estimator's bias is non-negative and within the Eq. III.2 bounds for any
    /// set of instance probabilities and sample count.
    #[test]
    fn estimator_bias_bounds_hold(
        probs in proptest::collection::vec(1e-6f64..0.2, 1..60),
        n in 1u64..5_000,
    ) {
        let bias = estimator::exact_relative_bias(&probs, n);
        let (max_p, sqrt_bound) = estimator::bias_bounds(&probs);
        prop_assert!(bias >= -1e-12);
        prop_assert!(bias <= max_p + 1e-9, "bias {bias} > max_p {max_p}");
        prop_assert!(bias <= sqrt_bound + 1e-9, "bias {bias} > sqrt bound {sqrt_bound}");
    }

    /// Expected distinct results are monotone in the sample count and bounded by
    /// the instance count.
    #[test]
    fn expected_distinct_is_monotone_and_bounded(
        probs in proptest::collection::vec(1e-6f64..0.3, 1..50),
        n in 1u64..2_000,
    ) {
        let a = estimator::expected_distinct(&probs, n);
        let b = estimator::expected_distinct(&probs, n + 100);
        prop_assert!(a <= b + 1e-9);
        prop_assert!(b <= probs.len() as f64 + 1e-9);
    }

    /// The Gamma belief's mean and variance match the paper's parameterisation for
    /// any valid (N1, n) pair.
    #[test]
    fn gamma_belief_moments(n1 in 0u64..500, n in 1u64..100_000) {
        let belief = Gamma::belief(n1 as f64, n as f64, 0.1, 1.0).unwrap();
        let expected_mean = (n1 as f64 + 0.1) / (n as f64 + 1.0);
        prop_assert!((belief.mean() - expected_mean).abs() < 1e-12);
        // The belief's variance respects the Eq. III.3-style bound mean / n.
        prop_assert!(belief.variance() <= belief.mean() / n as f64 + 1e-12);
    }

    /// Gamma samples are always strictly positive and finite.
    #[test]
    fn gamma_samples_positive(shape in 0.01f64..50.0, rate in 0.01f64..1_000.0, seed in 0u64..1_000) {
        let dist = Gamma::new(shape, rate).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let draw = dist.sample(&mut rng);
            prop_assert!(draw.is_finite() && draw > 0.0);
        }
    }

    /// Any chunking policy produces a complete, non-overlapping partition.
    #[test]
    fn chunking_is_a_partition(
        frames in 1u64..50_000,
        chunk_frames in 1u64..5_000,
        fixed_count in 1u32..64,
        per_clip in proptest::bool::ANY,
    ) {
        let repo = VideoRepository::single_clip(frames);
        let policy = if per_clip {
            ChunkingPolicy::FixedFrames { frames: chunk_frames }
        } else {
            ChunkingPolicy::FixedCount { chunks: fixed_count }
        };
        let chunking = Chunking::new(&repo, policy);
        let mut covered = 0u64;
        let mut previous_end = 0u64;
        for chunk in chunking.chunks() {
            prop_assert!(!chunk.is_empty());
            prop_assert_eq!(chunk.start(), previous_end);
            previous_end = chunk.end();
            covered += chunk.len();
        }
        prop_assert_eq!(covered, frames);
        prop_assert_eq!(previous_end, frames);
    }

    /// Both within-chunk samplers enumerate every frame exactly once.
    #[test]
    fn samplers_are_without_replacement(len in 1u64..400, seed in 0u64..500, plus in proptest::bool::ANY) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen = HashSet::new();
        if plus {
            let mut sampler = RandomPlusSampler::new(len);
            while let Some(f) = sampler.next_frame(&mut rng) {
                prop_assert!(f < len);
                prop_assert!(seen.insert(f));
            }
        } else {
            let mut sampler = UniformSampler::new(len);
            while let Some(f) = sampler.next_frame(&mut rng) {
                prop_assert!(f < len);
                prop_assert!(seen.insert(f));
            }
        }
        prop_assert_eq!(seen.len() as u64, len);
    }

    /// Simplex projection always returns a valid distribution that is no further
    /// from the input than the uniform distribution is.
    #[test]
    fn simplex_projection_is_valid(v in proptest::collection::vec(-10.0f64..10.0, 1..40)) {
        let w = project_to_simplex(&v);
        prop_assert_eq!(w.len(), v.len());
        prop_assert!(w.iter().all(|&x| x >= -1e-12));
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        let dist = |a: &[f64]| -> f64 { a.iter().zip(&v).map(|(x, y)| (x - y) * (x - y)).sum() };
        let uniform = vec![1.0 / v.len() as f64; v.len()];
        prop_assert!(dist(&w) <= dist(&uniform) + 1e-9);
    }

    /// The optimal-weight solver never does worse than the uniform allocation.
    #[test]
    fn solver_at_least_matches_uniform(
        rows in proptest::collection::vec(
            proptest::collection::vec(0.0f64..0.05, 3),
            1..20
        ),
        n in 10u64..2_000,
    ) {
        let probs = InstanceChunkProbabilities::new(rows, 3);
        let uniform = vec![1.0 / 3.0; 3];
        let uniform_value = expected_found(&probs, &uniform, n);
        let optimal = optimal_weights(&probs, n, SolverOptions::default());
        prop_assert!(optimal.expected_found >= uniform_value - 1e-9);
    }

    /// The skew metric is scale-free (multiplying all counts by a constant does not
    /// change it) and at least 1 for any non-empty histogram with instances.
    #[test]
    fn skew_metric_properties(
        counts in proptest::collection::vec(0usize..50, 2..128),
        factor in 2usize..5,
    ) {
        prop_assume!(counts.iter().sum::<usize>() > 0);
        let s = skewgen::skew_metric(&counts);
        prop_assert!(s >= 0.5, "skew {s}");
        let scaled: Vec<usize> = counts.iter().map(|&c| c * factor).collect();
        prop_assert!((skewgen::skew_metric(&scaled) - s).abs() < 1e-9);
    }
}
