//! Property-based tests over the cross-crate invariants the system relies on.

use exsample::core::estimator;
use exsample::data::skewgen;
use exsample::opt::{
    expected_found, optimal_weights, project_to_simplex, InstanceChunkProbabilities, SolverOptions,
};
use exsample::rand_ext::{Gamma, Sampler};
use exsample::video::{
    Chunking, ChunkingPolicy, FrameSampler, RandomPlusSampler, UniformSampler, VideoRepository,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

proptest! {
    /// The estimator's bias is non-negative and within the Eq. III.2 bounds for any
    /// set of instance probabilities and sample count.
    #[test]
    fn estimator_bias_bounds_hold(
        probs in proptest::collection::vec(1e-6f64..0.2, 1..60),
        n in 1u64..5_000,
    ) {
        let bias = estimator::exact_relative_bias(&probs, n);
        let (max_p, sqrt_bound) = estimator::bias_bounds(&probs);
        prop_assert!(bias >= -1e-12);
        prop_assert!(bias <= max_p + 1e-9, "bias {bias} > max_p {max_p}");
        prop_assert!(bias <= sqrt_bound + 1e-9, "bias {bias} > sqrt bound {sqrt_bound}");
    }

    /// Expected distinct results are monotone in the sample count and bounded by
    /// the instance count.
    #[test]
    fn expected_distinct_is_monotone_and_bounded(
        probs in proptest::collection::vec(1e-6f64..0.3, 1..50),
        n in 1u64..2_000,
    ) {
        let a = estimator::expected_distinct(&probs, n);
        let b = estimator::expected_distinct(&probs, n + 100);
        prop_assert!(a <= b + 1e-9);
        prop_assert!(b <= probs.len() as f64 + 1e-9);
    }

    /// The Gamma belief's mean and variance match the paper's parameterisation for
    /// any valid (N1, n) pair.
    #[test]
    fn gamma_belief_moments(n1 in 0u64..500, n in 1u64..100_000) {
        let belief = Gamma::belief(n1 as f64, n as f64, 0.1, 1.0).unwrap();
        let expected_mean = (n1 as f64 + 0.1) / (n as f64 + 1.0);
        prop_assert!((belief.mean() - expected_mean).abs() < 1e-12);
        // The belief's variance respects the Eq. III.3-style bound mean / n.
        prop_assert!(belief.variance() <= belief.mean() / n as f64 + 1e-12);
    }

    /// Gamma samples are always strictly positive and finite.
    #[test]
    fn gamma_samples_positive(shape in 0.01f64..50.0, rate in 0.01f64..1_000.0, seed in 0u64..1_000) {
        let dist = Gamma::new(shape, rate).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let draw = dist.sample(&mut rng);
            prop_assert!(draw.is_finite() && draw > 0.0);
        }
    }

    /// Any chunking policy produces a complete, non-overlapping partition.
    #[test]
    fn chunking_is_a_partition(
        frames in 1u64..50_000,
        chunk_frames in 1u64..5_000,
        fixed_count in 1u32..64,
        per_clip in proptest::bool::ANY,
    ) {
        let repo = VideoRepository::single_clip(frames);
        let policy = if per_clip {
            ChunkingPolicy::FixedFrames { frames: chunk_frames }
        } else {
            ChunkingPolicy::FixedCount { chunks: fixed_count }
        };
        let chunking = Chunking::new(&repo, policy);
        let mut covered = 0u64;
        let mut previous_end = 0u64;
        for chunk in chunking.chunks() {
            prop_assert!(!chunk.is_empty());
            prop_assert_eq!(chunk.start(), previous_end);
            previous_end = chunk.end();
            covered += chunk.len();
        }
        prop_assert_eq!(covered, frames);
        prop_assert_eq!(previous_end, frames);
    }

    /// Both within-chunk samplers enumerate every frame exactly once.
    #[test]
    fn samplers_are_without_replacement(len in 1u64..400, seed in 0u64..500, plus in proptest::bool::ANY) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen = HashSet::new();
        if plus {
            let mut sampler = RandomPlusSampler::new(len);
            while let Some(f) = sampler.next_frame(&mut rng) {
                prop_assert!(f < len);
                prop_assert!(seen.insert(f));
            }
        } else {
            let mut sampler = UniformSampler::new(len);
            while let Some(f) = sampler.next_frame(&mut rng) {
                prop_assert!(f < len);
                prop_assert!(seen.insert(f));
            }
        }
        prop_assert_eq!(seen.len() as u64, len);
    }

    /// Simplex projection always returns a valid distribution that is no further
    /// from the input than the uniform distribution is.
    #[test]
    fn simplex_projection_is_valid(v in proptest::collection::vec(-10.0f64..10.0, 1..40)) {
        let w = project_to_simplex(&v);
        prop_assert_eq!(w.len(), v.len());
        prop_assert!(w.iter().all(|&x| x >= -1e-12));
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        let dist = |a: &[f64]| -> f64 { a.iter().zip(&v).map(|(x, y)| (x - y) * (x - y)).sum() };
        let uniform = vec![1.0 / v.len() as f64; v.len()];
        prop_assert!(dist(&w) <= dist(&uniform) + 1e-9);
    }

    /// The optimal-weight solver never does worse than the uniform allocation.
    #[test]
    fn solver_at_least_matches_uniform(
        rows in proptest::collection::vec(
            proptest::collection::vec(0.0f64..0.05, 3),
            1..20
        ),
        n in 10u64..2_000,
    ) {
        let probs = InstanceChunkProbabilities::new(rows, 3);
        let uniform = vec![1.0 / 3.0; 3];
        let uniform_value = expected_found(&probs, &uniform, n);
        let optimal = optimal_weights(&probs, n, SolverOptions::default());
        prop_assert!(optimal.expected_found >= uniform_value - 1e-9);
    }

    /// The skew metric is scale-free (multiplying all counts by a constant does not
    /// change it) and at least 1 for any non-empty histogram with instances.
    #[test]
    fn skew_metric_properties(
        counts in proptest::collection::vec(0usize..50, 2..128),
        factor in 2usize..5,
    ) {
        prop_assume!(counts.iter().sum::<usize>() > 0);
        let s = skewgen::skew_metric(&counts);
        prop_assert!(s >= 0.5, "skew {s}");
        let scaled: Vec<usize> = counts.iter().map(|&c| c * factor).collect();
        prop_assert!((skewgen::skew_metric(&scaled) - s).abs() < 1e-9);
    }
}

mod hot_path_equivalence {
    //! Distribution-equivalence tests for the optimised chunk-selection hot
    //! path (belief cache, one-pass batched Thompson draw).

    use exsample::core::policy;
    use exsample::core::{ChunkStatsSet, ExSample, ExSampleConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two-sample chi-square statistic over per-chunk pick counts.
    fn chi_square(a: &[usize], b: &[usize]) -> f64 {
        assert_eq!(a.len(), b.len());
        let mut stat = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            let total = (x + y) as f64;
            if total > 0.0 {
                let diff = x as f64 - y as f64;
                stat += diff * diff / total;
            }
        }
        stat
    }

    /// `next_batch` must select chunks with the same distribution as `batch`
    /// sequential `next_frame` picks without intermediate statistics updates
    /// (Section III-F's equivalence claim for batched sampling).
    #[test]
    fn batched_picks_match_sequential_unupdated_picks_chi_square() {
        let chunks = 8usize;
        let lengths = vec![1_000_000u64; chunks];
        let mut seeded = ExSample::new(ExSampleConfig::default(), &lengths);
        // Skewed but not degenerate statistics: two productive chunks at
        // different strengths, the rest unproductive.
        for round in 0..40 {
            for j in 0..chunks {
                let delta = i64::from(j == 5) + i64::from(j == 2 && round % 2 == 0);
                seeded.record(j, delta);
            }
        }
        let mut sequential = seeded.clone();
        let mut batched = seeded;

        let n = 6_000usize;
        let mut rng_a = StdRng::seed_from_u64(4_001);
        let mut rng_b = StdRng::seed_from_u64(4_002);
        let mut counts_batched = vec![0usize; chunks];
        for pick in batched.next_batch(&mut rng_a, n) {
            counts_batched[pick.chunk] += 1;
        }
        let mut counts_sequential = vec![0usize; chunks];
        for _ in 0..n {
            // No record() calls: the statistics (and therefore the selection
            // distribution) stay fixed, matching the batched semantics.
            let pick = sequential.next_frame(&mut rng_b).expect("frames remain");
            counts_sequential[pick.chunk] += 1;
        }

        assert_eq!(counts_batched.iter().sum::<usize>(), n);
        assert_eq!(counts_sequential.iter().sum::<usize>(), n);
        let stat = chi_square(&counts_batched, &counts_sequential);
        // Two-sample chi-square with df = chunks - 1 = 7: the 99.99 % quantile
        // is 29.9.  The seeds are fixed, so this is fully deterministic; the
        // generous threshold documents the intended statistical contract.
        assert!(
            stat < 29.9,
            "chi-square {stat:.2} too large: batched {counts_batched:?} vs sequential {counts_sequential:?}"
        );
    }

    /// The belief-cache selection path must agree with the uncached reference
    /// path draw for draw under a fixed seed, while statistics evolve.
    #[test]
    fn belief_cache_matches_uncached_reference_draw_for_draw() {
        let config = ExSampleConfig::default();
        let mut stats = ChunkStatsSet::new(24);
        let eligible = vec![true; 24];
        let mut rng_cached = StdRng::seed_from_u64(5_001);
        let mut rng_reference = StdRng::seed_from_u64(5_001);
        for i in 0..4_000u64 {
            let a = policy::select_chunk(&config, &stats, &eligible, &mut rng_cached)
                .expect("eligible chunks exist");
            let b = policy::select_chunk_reference(&config, &stats, &eligible, &mut rng_reference)
                .expect("eligible chunks exist");
            assert_eq!(a, b, "pick {i} diverged between cached and reference paths");
            // Mixed feedback keeps chunk shapes moving across the boost
            // boundary (N1 = 0 <-> N1 >= 1).
            let delta = i64::from(i % 13 == 0) - i64::from(i % 29 == 0);
            stats.record(a, delta);
        }
    }
}
