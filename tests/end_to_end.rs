//! Cross-crate integration tests: the full sampling pipeline (workload generation →
//! chunking → ExSample → simulated detector → discriminator → metrics) behaves the
//! way the paper describes.

use exsample::core::{ChunkSelectionPolicy, ExSample, ExSampleConfig};
use exsample::data::datasets::{bdd_mot, DatasetAnalog};
use exsample::data::{Dataset, GridWorkload, SkewLevel};
use exsample::detect::DetectorNoise;
use exsample::sim::runner::DiscriminatorKind;
use exsample::sim::{run_trials, MethodKind, QueryRunner, StopCondition};
use exsample::video::DecodeCostModel;

fn skewed_dataset(seed: u64) -> Dataset {
    GridWorkload::builder()
        .frames(400_000)
        .instances(800)
        .chunks(32)
        .mean_duration(200.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(seed)
        .build()
        .expect("valid workload")
        .generate()
}

fn uniform_dataset(seed: u64) -> Dataset {
    GridWorkload::builder()
        .frames(400_000)
        .instances(800)
        .chunks(32)
        .mean_duration(200.0)
        .skew(SkewLevel::None)
        .seed(seed)
        .build()
        .expect("valid workload")
        .generate()
}

/// On skewed data, ExSample finds clearly more objects than random within the same
/// frame budget (the paper's central claim).
#[test]
fn exsample_beats_random_on_skewed_data() {
    let dataset = skewed_dataset(1);
    let budget = 5_000u64;
    let trials = 3;
    let exsample = run_trials(trials, true, |trial| {
        QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(budget))
            .seed(100 + trial)
            .run(MethodKind::ExSample(ExSampleConfig::default()))
    })
    .expect("sweep succeeded");
    let random = run_trials(trials, true, |trial| {
        QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(budget))
            .seed(100 + trial)
            .run(MethodKind::Random)
    })
    .expect("sweep succeeded");
    let avg = |set: &exsample::sim::TrialSet| {
        set.results.iter().map(|r| r.true_found as f64).sum::<f64>() / set.len() as f64
    };
    assert!(
        avg(&exsample) > avg(&random) * 1.3,
        "exsample {} vs random {}",
        avg(&exsample),
        avg(&random)
    );
}

/// On data with no skew, ExSample performs comparably to random sampling — it never
/// does significantly worse (the paper's "worst case" guarantee).
#[test]
fn exsample_matches_random_without_skew() {
    let dataset = uniform_dataset(2);
    let budget = 4_000u64;
    let trials = 3;
    let exsample = run_trials(trials, true, |trial| {
        QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(budget))
            .seed(200 + trial)
            .run(MethodKind::ExSample(ExSampleConfig::default()))
    })
    .expect("sweep succeeded");
    let random = run_trials(trials, true, |trial| {
        QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(budget))
            .seed(200 + trial)
            .run(MethodKind::Random)
    })
    .expect("sweep succeeded");
    let avg = |set: &exsample::sim::TrialSet| {
        set.results.iter().map(|r| r.true_found as f64).sum::<f64>() / set.len() as f64
    };
    // Within 15% of each other.
    let ratio = avg(&exsample) / avg(&random);
    assert!(
        (0.85..=1.2).contains(&ratio),
        "exsample/random found ratio {ratio} (exsample {}, random {})",
        avg(&exsample),
        avg(&random)
    );
}

/// A single chunk makes ExSample statistically equivalent to random sampling
/// (Section IV-C's first extreme).
#[test]
fn single_chunk_is_equivalent_to_random() {
    let dataset = GridWorkload::builder()
        .frames(200_000)
        .instances(400)
        .chunks(1)
        .mean_duration(150.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(3)
        .build()
        .unwrap()
        .generate();
    let budget = 2_000u64;
    let ex = QueryRunner::new(&dataset)
        .stop(StopCondition::FrameBudget(budget))
        .seed(5)
        .run(MethodKind::ExSample(ExSampleConfig::default()))
        .expect("query run succeeded");
    let rnd = QueryRunner::new(&dataset)
        .stop(StopCondition::FrameBudget(budget))
        .seed(5)
        .run(MethodKind::Random)
        .expect("query run succeeded");
    let ratio = ex.true_found as f64 / rnd.true_found.max(1) as f64;
    assert!((0.8..=1.25).contains(&ratio), "ratio {ratio}");
}

/// Runs are exactly reproducible for a fixed seed and differ across seeds.
#[test]
fn runs_are_deterministic_given_a_seed() {
    let dataset = skewed_dataset(4);
    let run = |seed: u64| {
        QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(800))
            .seed(seed)
            .run(MethodKind::ExSample(ExSampleConfig::default()))
            .expect("query run succeeded")
    };
    let a = run(9);
    let b = run(9);
    let c = run(10);
    assert_eq!(a.true_found, b.true_found);
    assert_eq!(a.frames_processed, b.frames_processed);
    assert_eq!(a.found_instances, b.found_instances);
    assert!(a.found_instances != c.found_instances || a.true_found != c.true_found);
}

/// Exhaustive sampling finds every instance exactly once, no matter the method.
#[test]
fn exhaustive_run_reaches_full_recall() {
    let dataset = GridWorkload::builder()
        .frames(5_000)
        .instances(40)
        .chunks(8)
        .mean_duration(60.0)
        .skew(SkewLevel::Quarter)
        .seed(6)
        .build()
        .unwrap()
        .generate();
    for kind in [
        MethodKind::ExSample(ExSampleConfig::default()),
        MethodKind::Random,
        MethodKind::RandomPlus,
        MethodKind::Sequential { stride: 1 },
    ] {
        let result = QueryRunner::new(&dataset)
            .stop(StopCondition::Exhaustive)
            .seed(7)
            .run(kind.clone())
            .expect("query run succeeded");
        assert_eq!(result.frames_processed, 5_000, "{kind:?}");
        assert_eq!(result.true_found, 40, "{kind:?}");
        assert!((result.recall() - 1.0).abs() < 1e-12);
    }
}

/// The batched sampler finds a comparable number of objects per processed frame to
/// the sequential sampler (Section III-F: the update is commutative).
#[test]
fn batched_sampling_matches_sequential_efficiency() {
    use exsample::detect::{Detector, PerfectDetector};
    use exsample::track::{Discriminator, OracleDiscriminator};
    use rand::SeedableRng;
    use std::sync::Arc;

    let dataset = skewed_dataset(8);
    let truth = Arc::clone(dataset.ground_truth());
    let starts: Vec<u64> = dataset
        .chunking()
        .chunks()
        .iter()
        .map(|c| c.start())
        .collect();
    let budget = 3_000u64;

    let run_with_batch = |batch: usize, seed: u64| -> usize {
        let detector = PerfectDetector::new(Arc::clone(&truth), GridWorkload::class());
        let mut discriminator = OracleDiscriminator::new();
        let mut sampler = ExSample::new(ExSampleConfig::default(), &dataset.chunk_lengths());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut processed = 0u64;
        while processed < budget {
            let want = batch.min((budget - processed) as usize);
            let picks = sampler.next_batch(&mut rng, want);
            if picks.is_empty() {
                break;
            }
            let mut updates = Vec::new();
            for pick in &picks {
                let frame = starts[pick.chunk] + pick.offset;
                let outcome = discriminator.observe(&detector.detect(frame));
                updates.push((pick.chunk, outcome.n1_delta()));
                processed += 1;
            }
            for (chunk, delta) in updates {
                sampler.record(chunk, delta);
            }
        }
        discriminator.distinct_count()
    };

    let sequential = run_with_batch(1, 31);
    let batched = run_with_batch(32, 31);
    let ratio = batched as f64 / sequential as f64;
    assert!(
        (0.75..=1.3).contains(&ratio),
        "batched {batched} vs sequential {sequential}"
    );
}

/// The noisy detector + tracking discriminator pipeline still achieves the recall
/// target, and the virtual time accounting is internally consistent.
#[test]
fn noisy_pipeline_reaches_recall_with_consistent_accounting() {
    let dataset = skewed_dataset(9);
    let cost = DecodeCostModel::paper();
    let result = QueryRunner::new(&dataset)
        .stop(StopCondition::Recall(0.3))
        .detector_noise(DetectorNoise::default())
        .discriminator(DiscriminatorKind::Tracking)
        .seed(12)
        .run(MethodKind::ExSample(ExSampleConfig::default()))
        .expect("query run succeeded");
    assert!(result.recall() >= 0.3);
    // Time accounting: sample_secs equals the cost model applied to the frames.
    let expected = cost.sampled_processing_secs(result.frames_processed);
    assert!((result.sample_secs - expected).abs() < 1e-6);
    assert_eq!(result.scan_secs, 0.0);
    // frames_to_recall is monotone in the recall level.
    let f1 = result.frames_to_recall(0.1).unwrap();
    let f3 = result.frames_to_recall(0.3).unwrap();
    assert!(f1 <= f3);
}

/// The proxy baseline's upfront scan exceeds ExSample's entire query time on a
/// realistic analog (the Table I architectural claim).
#[test]
fn proxy_scan_alone_exceeds_exsample_query_time() {
    let dataset = DatasetAnalog::new(bdd_mot(), 5).with_scale(0.1).generate();
    let cost = DecodeCostModel::paper();
    let result = QueryRunner::new(&dataset)
        .class("pedestrian")
        .stop(StopCondition::Recall(0.9))
        .frame_cap(dataset.total_frames())
        .seed(3)
        .run(MethodKind::ExSample(ExSampleConfig::default()))
        .expect("query run succeeded");
    assert!(result.recall() >= 0.9);
    let exsample_time = cost.sampled_processing_secs(result.frames_processed);
    let scan_time = cost.proxy_scoring_secs(dataset.total_frames());
    assert!(
        exsample_time < scan_time,
        "exsample {exsample_time}s vs scan {scan_time}s"
    );
}

/// All four chunk-selection policies complete and the adaptive ones beat the
/// uniform policy on skewed data.
#[test]
fn adaptive_policies_beat_uniform_policy() {
    let dataset = skewed_dataset(10);
    let budget = 3_000u64;
    let found = |policy: ChunkSelectionPolicy| {
        QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(budget))
            .seed(21)
            .run(MethodKind::ExSample(
                ExSampleConfig::default().with_policy(policy),
            ))
            .expect("query run succeeded")
            .true_found
    };
    let thompson = found(ChunkSelectionPolicy::ThompsonSampling);
    let ucb = found(ChunkSelectionPolicy::BayesUcb);
    let uniform = found(ChunkSelectionPolicy::UniformChunk);
    assert!(
        thompson > uniform,
        "thompson {thompson} vs uniform {uniform}"
    );
    assert!(ucb > uniform, "ucb {ucb} vs uniform {uniform}");
}
