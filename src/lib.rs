//! # exsample
//!
//! Facade crate for the ExSample reproduction workspace.
//!
//! ExSample (Moll et al., *ExSample: Efficient Searches on Video Repositories
//! through Adaptive Sampling*, ICDE 2022) is an adaptive sampling technique for
//! answering *distinct-object limit queries* ("find 20 traffic lights") over large,
//! un-indexed video repositories without running an expensive object detector on
//! every frame.
//!
//! This crate simply re-exports the workspace's sub-crates under stable module
//! names so that downstream users (and the `examples/` and `tests/` directories of
//! this repository) can depend on a single crate:
//!
//! * [`rand_ext`] — from-scratch random distributions (Gamma, LogNormal, …).
//! * [`video`] — the simulated video-repository substrate.
//! * [`detect`] — object detection data model and the simulated detector.
//! * [`track`] — IoU matching, SORT-style tracking, and the discriminator.
//! * [`data`] — synthetic workloads and statistical dataset analogs.
//! * [`core`] — the ExSample algorithm itself (Algorithm 1, Thompson sampling).
//! * [`baselines`] — sequential scan, random, random+, BlazeIt-style proxy.
//! * [`engine`] — the batched multi-query execution engine: the
//!   `SamplingPolicy` trait unifying every sampling strategy, and the staged
//!   pick/detect/record pipeline with cross-query frame coalescing.
//! * [`opt`] — optimal static chunk-weight solver (Eq. IV.1) and skew metric.
//! * [`sim`] — the query-runner harness, cost model, and experiment sweeps.
//!
//! ## Quickstart
//!
//! ```
//! use exsample::core::{ExSample, ExSampleConfig};
//! use exsample::data::grid::{GridWorkload, SkewLevel};
//! use exsample::sim::runner::{QueryRunner, StopCondition};
//!
//! // Build a small synthetic dataset with skewed instance placement.
//! let workload = GridWorkload::builder()
//!     .frames(100_000)
//!     .instances(200)
//!     .chunks(16)
//!     .mean_duration(100.0)
//!     .skew(SkewLevel::Quarter)
//!     .seed(7)
//!     .build()
//!     .expect("valid workload");
//! let dataset = workload.generate();
//!
//! // Run ExSample until 50 distinct objects are found.
//! let sampler = ExSample::new(ExSampleConfig::default(), &dataset.chunk_lengths());
//! let outcome = QueryRunner::new(&dataset)
//!     .stop(StopCondition::DistinctResults(50))
//!     .seed(11)
//!     .run_exsample(sampler)
//!     .expect("query run succeeded");
//! assert!(outcome.distinct_found >= 50);
//! ```

pub use exsample_baselines as baselines;
pub use exsample_core as core;
pub use exsample_data as data;
pub use exsample_detect as detect;
pub use exsample_engine as engine;
pub use exsample_opt as opt;
pub use exsample_rand as rand_ext;
pub use exsample_sim as sim;
pub use exsample_track as track;
pub use exsample_video as video;
